package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestDistinctSeeds(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical outputs", same)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(7)
	for n := 1; n < 40; n++ {
		for i := 0; i < 200; i++ {
			got := r.Intn(n)
			if got < 0 || got >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, got)
			}
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniform(t *testing.T) {
	r := New(11)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d: got %d, want ≈%.0f", i, c, want)
		}
	}
}

func TestIntRange(t *testing.T) {
	r := New(5)
	seenLo, seenHi := false, false
	for i := 0; i < 2000; i++ {
		got := r.IntRange(3, 7)
		if got < 3 || got > 7 {
			t.Fatalf("IntRange(3,7) = %d", got)
		}
		if got == 3 {
			seenLo = true
		}
		if got == 7 {
			seenHi = true
		}
	}
	if !seenLo || !seenHi {
		t.Error("IntRange never hit an endpoint")
	}
	if got := r.IntRange(4, 4); got != 4 {
		t.Errorf("IntRange(4,4) = %d, want 4", got)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
		sum += f
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Errorf("mean = %v, want ≈0.5", mean)
	}
}

func TestBool(t *testing.T) {
	r := New(9)
	if r.Bool(0) {
		t.Error("Bool(0) returned true")
	}
	if !r.Bool(1) {
		t.Error("Bool(1) returned false")
	}
	hits := 0
	const n = 50000
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	if p := float64(hits) / n; math.Abs(p-0.3) > 0.02 {
		t.Errorf("Bool(0.3) frequency = %v", p)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(13)
	for n := 0; n < 30; n++ {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestBinomialMoments(t *testing.T) {
	r := New(17)
	for _, tc := range []struct {
		n int
		p float64
	}{{10, 0.5}, {50, 0.1}, {500, 0.3}, {5000, 0.5}} {
		const draws = 3000
		sum := 0.0
		for i := 0; i < draws; i++ {
			k := r.Binomial(tc.n, tc.p)
			if k < 0 || k > tc.n {
				t.Fatalf("Binomial(%d,%v) = %d out of range", tc.n, tc.p, k)
			}
			sum += float64(k)
		}
		mean := sum / draws
		want := float64(tc.n) * tc.p
		sd := math.Sqrt(want * (1 - tc.p))
		if math.Abs(mean-want) > 6*sd/math.Sqrt(draws)+0.5 {
			t.Errorf("Binomial(%d,%v): mean %v, want ≈%v", tc.n, tc.p, mean, want)
		}
	}
	if got := r.Binomial(10, 0); got != 0 {
		t.Errorf("Binomial(10,0) = %d", got)
	}
	if got := r.Binomial(10, 1); got != 10 {
		t.Errorf("Binomial(10,1) = %d", got)
	}
}

func TestZipfSkew(t *testing.T) {
	r := New(23)
	z := NewZipfian(100, 1.2)
	counts := make([]int, 101)
	const draws = 50000
	for i := 0; i < draws; i++ {
		k := z.Sample(r)
		if k < 1 || k > 100 {
			t.Fatalf("Zipf sample %d out of [1,100]", k)
		}
		counts[k]++
	}
	if counts[1] <= counts[2] || counts[2] <= counts[10] {
		t.Errorf("Zipf not decreasing: c1=%d c2=%d c10=%d", counts[1], counts[2], counts[10])
	}
}

func TestCategoricalSubDistribution(t *testing.T) {
	r := New(29)
	w := []float64{0.2, 0.3} // deficit 0.5 → -1
	counts := map[int]int{}
	const draws = 100000
	for i := 0; i < draws; i++ {
		counts[r.Categorical(w)]++
	}
	for idx, want := range map[int]float64{0: 0.2, 1: 0.3, -1: 0.5} {
		got := float64(counts[idx]) / draws
		if math.Abs(got-want) > 0.01 {
			t.Errorf("index %d: frequency %v, want ≈%v", idx, got, want)
		}
	}
}

func TestCategoricalNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on negative weight")
		}
	}()
	New(1).Categorical([]float64{0.5, -0.1})
}

func TestHashFloatProperties(t *testing.T) {
	if HashFloat(1, 2, 3) != HashFloat(1, 2, 3) {
		t.Error("HashFloat not deterministic")
	}
	if HashFloat(1, 2, 3) == HashFloat(2, 2, 3) {
		t.Error("HashFloat ignores seed")
	}
	if HashFloat(1, 2, 3) == HashFloat(1, 3, 2) {
		t.Error("HashFloat symmetric in (a,b); collisions should be rare")
	}
	err := quick.Check(func(seed int64, a, b int) bool {
		f := HashFloat(seed, a, b)
		return f >= 0 && f < 1
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestHashFloatUniform(t *testing.T) {
	var buckets [10]int
	const n = 100000
	for i := 0; i < n; i++ {
		buckets[int(HashFloat(99, i, i*7+1)*10)]++
	}
	want := float64(n) / 10
	for i, c := range buckets {
		if math.Abs(float64(c)-want) > 6*math.Sqrt(want) {
			t.Errorf("bucket %d: %d, want ≈%.0f", i, c, want)
		}
	}
}

func TestSplitIndependence(t *testing.T) {
	r := New(31)
	a := r.Split()
	b := r.Split()
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("split streams overlap in %d/100 outputs", same)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkIntn(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Intn(1000)
	}
}

func TestNewStreamIndependence(t *testing.T) {
	// distinct streams of one seed must differ from each other, from other
	// seeds' streams, and from the base generator
	a := NewStream(7, 0)
	b := NewStream(7, 1)
	c := NewStream(8, 0)
	base := New(7)
	va, vb, vc, vbase := a.Uint64(), b.Uint64(), c.Uint64(), base.Uint64()
	if va == vb || va == vc || va == vbase || vb == vc {
		t.Errorf("stream collision: %d %d %d %d", va, vb, vc, vbase)
	}
	// purely (seed, stream)-determined: a fresh construction replays exactly
	if got := NewStream(7, 0).Uint64(); got != va {
		t.Errorf("stream not reproducible: %d vs %d", got, va)
	}
}

func TestNewStreamUniformity(t *testing.T) {
	// crude uniformity check across streams: first draws should average ~0.5
	sum := 0.0
	const n = 4000
	for i := 0; i < n; i++ {
		sum += NewStream(42, uint64(i)).Float64()
	}
	if mean := sum / n; mean < 0.47 || mean > 0.53 {
		t.Errorf("first-draw mean across streams = %v, want ≈0.5", mean)
	}
}
