package lp

import (
	"errors"
	"fmt"
	"math"
)

// Solver is a persistent, warm-starting LP solver. Unlike the one-shot
// Backends (Dense, Revised), a Solver owns its simplex state — basis, LU
// factors, eta arena, Devex reference weights and every scratch vector —
// across solves:
//
//	s := lp.NewSolver(lp.Revised{Workers: w})
//	sol, err := s.Solve(p)          // cold solve, installs the basis
//	sol, err = s.Resolve(delta)     // warm re-solve from the previous basis
//	s.Release()                     // return the state arena to the pool
//
// Resolve applies a ProblemDelta (columns added/removed, bounds or objective
// coefficients changed) to the Solver's owned copy of the problem and
// re-optimizes from the previous optimal basis instead of the all-slack
// start. Removed basic columns are replaced by free row slacks; if the
// patched basis turns out numerically singular or primal infeasible, Resolve
// falls back to a cold solve automatically, so it is never less correct than
// solving from scratch — only (usually much) faster. Stats reports how often
// each path ran.
//
// The underlying state lives in a sync.Pool arena keyed by the row
// dimension, so short-lived Solvers in a high-QPS serving loop recycle the
// factorization workspace instead of reallocating it per request. To keep
// the steady-state Resolve allocation-free, returned Solutions alias
// solver-owned buffers: X and Y are valid until the next Solve or Resolve
// call on the same Solver (Release detaches them, so the final solution
// survives the solver). Callers that need older solutions must copy.
// A Solver is not safe for concurrent use.
type Solver struct {
	// Config carries the revised-simplex options (pricing rule, worker
	// bound, iteration limits). The zero value uses the package defaults.
	Config Revised

	prob   *Problem // owned working copy of the current problem
	st     *revisedState
	warmOK bool // previous solve ended Optimal with st.basis valid for prob
	stats  SolverStats

	// scratch reused across Resolve calls
	removed   []bool
	colMap    []int
	slackUsed []bool
	wScratch  []float64

	// changed-column tracking (TrackChangedColumns)
	trackChanged bool
	prevX        []float64 // previous solution's primal values
	changedCols  []int     // post-delta indices whose x moved in the last solve
	changedAll   bool      // treat every column as changed (cold solve, error)
}

// SolverStats counts how a Solver's solves were served.
type SolverStats struct {
	// ColdSolves counts solves from the all-slack basis (Solve calls plus
	// Resolve fallbacks).
	ColdSolves int
	// WarmSolves counts Resolve calls served from the previous basis.
	WarmSolves int
	// FastFinishes counts warm re-solves that skipped the primal pricing
	// loop entirely: the delta left the basis, c_B and therefore the duals
	// untouched and dual repair made no pivots, so the previous optimality
	// certificate covers every surviving column and only the delta's own
	// columns were priced. The O(|Δ|) serving path for bid arrivals.
	FastFinishes int
	// FallbackSingular counts Resolve calls whose patched basis failed to
	// factorize and fell back to a cold solve.
	FallbackSingular int
	// FallbackInfeasible counts Resolve calls whose patched basis was
	// primal infeasible under the new bounds and fell back to a cold solve —
	// the aggregate of FallbackRepairStall and FallbackBoundInfeasible,
	// retained for callers that only care that the warm path was abandoned.
	FallbackInfeasible int
	// FallbackRepairStall counts fallbacks where the dual repair exhausted
	// its pivot budget or its stall window (even after the partial-warm
	// cutover retry) without reaching primal feasibility.
	FallbackRepairStall int
	// FallbackBoundInfeasible counts fallbacks where a primal-infeasible row
	// had no eligible entering column — the dual-unbounded certificate that
	// the new bounds (numerically) admit no feasible point from this basis.
	FallbackBoundInfeasible int
	// FallbackError counts warm starts abandoned before the repair could
	// run: a removed basic column with no substitutable slack.
	FallbackError int
	// WarmPivots is the total number of simplex iterations spent in warm
	// re-solves (dual-repair pivots plus the primal finish) — the work
	// metric the ≥5× speedup claim is about.
	WarmPivots int
	// Refactorizations counts LU rebuilds on the solver's state (cold
	// starts, eta-chain hygiene, numerical fallbacks) since the state was
	// acquired.
	Refactorizations int64
	// EtaLen is the current eta-chain length — product-form updates
	// accumulated since the last refactorization. A point-in-time depth,
	// not a counter: it shows how far the basis has drifted from its LU.
	EtaLen int
}

// NewSolver returns a persistent solver with the given revised-simplex
// configuration.
func NewSolver(cfg Revised) *Solver {
	return &Solver{Config: cfg}
}

// BoundChange sets row Row's right-hand side to B (the packing form still
// requires B ≥ 0).
type BoundChange struct {
	Row int
	B   float64
}

// ObjChange sets column Col's objective coefficient to C. Col refers to the
// pre-delta column indexing.
type ObjChange struct {
	Col int
	C   float64
}

// ProblemDelta is a small change to the Solver's current problem. It is
// applied in one step: bounds and objective coefficients first (pre-delta
// indices), then column removals, then additions. The row dimension never
// changes. After application, surviving columns keep their relative order
// and added columns are appended in order — the contract incremental callers
// (core.Planner) rely on to track their own column maps without a return
// channel.
type ProblemDelta struct {
	// SetB changes right-hand-side bounds (capacities).
	SetB []BoundChange
	// SetC changes objective coefficients of surviving columns; changes to
	// columns also listed in RemoveCols are ignored.
	SetC []ObjChange
	// RemoveCols lists pre-delta column indices to delete. Duplicates are
	// tolerated.
	RemoveCols []int
	// AddCols are appended after removal; AddC holds their objective
	// coefficients, aligned with AddCols.
	AddCols []Column
	AddC    []float64
}

// Empty reports whether the delta changes nothing.
func (d *ProblemDelta) Empty() bool {
	return len(d.SetB) == 0 && len(d.SetC) == 0 && len(d.RemoveCols) == 0 && len(d.AddCols) == 0
}

// ErrNoProblem is returned by Resolve before any successful Solve.
var ErrNoProblem = errors.New("lp: Resolve called before Solve installed a problem")

// Stats returns the solve-path counters accumulated so far, plus a
// point-in-time snapshot of the state's refactorization count and
// eta-chain depth. Not safe concurrently with Solve/Resolve — read it from
// the same exclusion the solves run under.
func (s *Solver) Stats() SolverStats {
	st := s.stats
	if s.st != nil {
		st.Refactorizations = s.st.refactors
		st.EtaLen = len(s.st.etas)
	}
	return st
}

// TrackChangedColumns enables changed-column tracking: after every solve
// the Solver snapshots the primal values and, on the next warm Resolve,
// records exactly which post-delta columns' values differ from the previous
// solution (mapped across removals and additions). Incremental callers use
// the set to re-derive only the state that depends on moved columns — the
// rounding layer's delta-scoped resampling. Tracking costs one O(n) copy
// and one O(n) compare per solve and nothing else.
func (s *Solver) TrackChangedColumns(on bool) {
	s.trackChanged = on
	s.changedAll = true
}

// ChangedColumns reports the columns whose primal value changed in the last
// solve. all=true means every column must be treated as changed — a cold
// solve (including Resolve fallbacks), a solve error, or tracking having
// just been enabled — and cols is nil in that case. The slice is
// solver-owned and valid until the next Solve/Resolve.
func (s *Solver) ChangedColumns() (cols []int, all bool) {
	if s.changedAll {
		return nil, true
	}
	return s.changedCols, false
}

// snapshotX records the solution's primal values as the baseline for the
// next diff.
func (s *Solver) snapshotX(sol *Solution) {
	if !s.trackChanged || sol == nil {
		return
	}
	s.prevX = append(s.prevX[:0], sol.X...)
}

// diffChanged computes the changed-column set of a warm re-solve: surviving
// columns (via the old→new colMap filled by applyDelta) whose value moved,
// plus every appended column. colMap is monotone on survivors, so the
// result is ascending.
func (s *Solver) diffChanged(oldN int, x []float64) {
	if len(s.prevX) != oldN {
		// No trustworthy baseline (tracking enabled mid-stream).
		s.changedAll = true
		return
	}
	s.changedCols = s.changedCols[:0]
	surv := 0
	for j := 0; j < oldN; j++ {
		nj := s.colMap[j]
		if nj < 0 {
			continue
		}
		surv++
		if s.prevX[j] != x[nj] {
			s.changedCols = append(s.changedCols, nj)
		}
	}
	for nj := surv; nj < len(x); nj++ {
		s.changedCols = append(s.changedCols, nj)
	}
	s.changedAll = false
}

// Problem returns the Solver's owned copy of the current (post-delta)
// problem. Callers must treat it as read-only; mutate it only through
// Resolve.
func (s *Solver) Problem() *Problem { return s.prob }

// Solve installs a copy of p as the Solver's current problem and solves it
// cold (all-slack basis). The state arena is acquired from the dimension
// pool on first use and reused afterwards.
func (s *Solver) Solve(p *Problem) (*Solution, error) {
	if err := s.Config.validate(); err != nil {
		return nil, err
	}
	if err := p.Check(); err != nil {
		return nil, err
	}
	s.copyProblem(p)
	return s.cold()
}

// Release returns the simplex state to the dimension-keyed arena pool and
// detaches the problem. The Solver may be reused with a fresh Solve.
func (s *Solver) Release() {
	if s.st != nil {
		releaseState(s.st)
		s.st = nil
	}
	s.prob = nil
	s.warmOK = false
}

// Resolve applies the delta to the current problem and re-optimizes. It
// warm-starts from the previous basis whenever that basis is still
// factorizable and primal feasible under the new data, and falls back to a
// cold solve otherwise. Either way the returned solution is optimal for the
// post-delta problem (and certifiable by Verify against Problem()).
func (s *Solver) Resolve(d ProblemDelta) (*Solution, error) {
	if s.prob == nil {
		return nil, ErrNoProblem
	}
	if err := s.Config.validate(); err != nil {
		return nil, err
	}
	s.changedAll = true // cleared only by a successful warm diff
	oldN := s.prob.NumCols()
	if err := s.checkDelta(&d, oldN); err != nil {
		return nil, err
	}

	warm := s.warmOK && s.st != nil && s.prob.NumRows > 0
	basisSwaps := 0
	cBasic := false
	if warm {
		basisSwaps, warm = s.substituteRemovedBasics(&d, oldN)
		if !warm {
			s.stats.FallbackError++
		}
	}
	if warm {
		// A c change on a basic column moves the duals, which invalidates
		// the previous optimality certificate the fast finish relies on.
		for _, oc := range d.SetC {
			if s.st.posOf[oc.Col] >= 0 {
				cBasic = true
				break
			}
		}
	}
	// checkDelta validated every entering bound, coefficient and column, and
	// applyDelta preserves the CSC invariants by construction, so the
	// patched problem needs no O(nnz) re-validation here — full Check on
	// every small delta would dominate the serving hot path.
	s.applyDelta(&d, oldN)
	if s.st != nil && (len(d.RemoveCols) > 0 || len(d.AddCols) > 0) {
		s.st.aRowsOK = false // column structure changed under the row mirror
	}
	if !warm {
		return s.cold()
	}

	st := s.st
	newN := s.prob.NumCols()
	s.remapState(oldN, newN)
	st.loadRHS(!s.Config.NoPerturb)
	// Bind the worker pool and timer sink before the repair phase: pivot()
	// does the same later, but dual repair's solves and pricing pass run
	// first and must see the configured pool, not the previous solve's.
	s.Config.configure(st)

	refactorEvery := s.Config.RefactorEvery
	if refactorEvery <= 0 {
		refactorEvery = 128
	}
	// The previous factorization plus the eta file still represent the
	// patched basis (every removal swap was a product-form update), so a
	// small-delta re-solve reuses them and just refreshes x_B/c_B under the
	// new bounds and objective. The LU is rebuilt only to shed a long eta
	// chain — the same hygiene schedule the pivot loops use.
	if len(st.etas) >= refactorEvery {
		if err := st.refactorize(); err != nil {
			s.stats.FallbackSingular++
			return s.cold()
		}
	} else {
		st.recomputeXB()
	}
	// The patched basis is typically primal infeasible after bound shrinks
	// or basic-column removals; a short dual-simplex phase repairs it in a
	// few pivots. The pivot budget scales with the delta — a small delta
	// that needs thousands of repair pivots has lost the warm-start race and
	// should cut over early — capped at the old flat bound for bulk deltas.
	// If the repair still fails after its partial-warm cutover, solve cold:
	// correctness never depends on the warm path.
	budget := s.Config.RepairBudget
	if budget == 0 {
		deltaSize := len(d.SetB) + len(d.SetC) + len(d.RemoveCols) + len(d.AddCols)
		budget = 64 + 32*deltaSize
		if flat := 4*st.m + 16; budget > flat {
			budget = flat
		}
	}
	repairPivots, repair := st.dualRepair(budget, refactorEvery, s.Config.dualDSE())
	switch repair {
	case repairSingular:
		s.stats.FallbackSingular++
		return s.cold()
	case repairStalled:
		s.stats.FallbackInfeasible++
		s.stats.FallbackRepairStall++
		return s.cold()
	case repairUnbounded:
		s.stats.FallbackInfeasible++
		s.stats.FallbackBoundInfeasible++
		return s.cold()
	}
	s.stats.WarmSolves++
	s.stats.WarmPivots += repairPivots
	if repairPivots == 0 && basisSwaps == 0 && !cBasic {
		// The basis and c_B — and therefore the duals — are exactly the
		// previous solve's, which certified every then-existing column
		// optimal. Only the delta's own columns (appended, or nonbasic with
		// a changed c) can break the certificate: price exactly those, and
		// if none improves, the solution is optimal without a single pivot
		// or full pricing pass.
		if sol, done := s.fastFinish(&d, oldN); done {
			s.stats.FastFinishes++
			return s.finishWarm(sol, nil, oldN)
		}
	}
	sol, err := s.Config.pivot(st, true)
	if sol != nil {
		s.stats.WarmPivots += sol.Iterations
	}
	return s.finishWarm(sol, err, oldN)
}

// fastFinish prices just the delta's columns under the (unchanged) duals;
// if none is improving, it extracts the optimal solution directly. done is
// false when some delta column improves and the full pivot loop must run.
func (s *Solver) fastFinish(d *ProblemDelta, oldN int) (*Solution, bool) {
	st := s.st
	st.btran()
	newN := s.prob.NumCols()
	for _, oc := range d.SetC {
		nj := s.colMap[oc.Col]
		if nj >= 0 && st.posOf[nj] < 0 && st.reducedCost(nj) > reducedTol {
			return nil, false
		}
	}
	for nj := newN - len(d.AddCols); nj < newN; nj++ {
		if st.reducedCost(nj) > reducedTol {
			return nil, false
		}
	}
	return st.extract(0), true
}

// finishWarm is the warm path's epilogue: record warm-start validity, then
// feed the changed-column tracker.
func (s *Solver) finishWarm(sol *Solution, err error, oldN int) (*Solution, error) {
	sol, err = s.finish(sol, err)
	if s.trackChanged && err == nil && sol != nil && sol.Status == Optimal {
		s.diffChanged(oldN, sol.X)
		s.snapshotX(sol)
	}
	return sol, err
}

// pivotSubstTol is the minimum pivot magnitude accepted when swapping a
// removed basic column for a slack. It is far stricter than pivotTol: a
// marginal pivot here seeds the whole warm solve with a badly conditioned
// factorization, and falling back cold is cheap.
const pivotSubstTol = 1e-7

// warmFeasTol is the primal-feasibility tolerance on the warm basis: x_B
// entries below it mean the previous basis is infeasible under the new
// bounds and the warm start is abandoned. It matches the round-off clamping
// threshold of refactorize.
const warmFeasTol = 1e-9

// cold solves the current problem from the all-slack basis on the (pooled)
// state arena.
func (s *Solver) cold() (*Solution, error) {
	s.stats.ColdSolves++
	s.changedAll = true
	if sol, done := trivialSolution(s.prob); done {
		s.warmOK = false
		s.snapshotX(sol)
		return sol, solutionErr(sol)
	}
	if s.st == nil {
		s.st = acquireState(s.prob.NumRows)
	}
	s.st.rebind(s.prob, !s.Config.NoPerturb)
	if err := s.st.refactorize(); err != nil {
		s.warmOK = false
		return nil, err
	}
	sol, err := s.finish(s.Config.pivot(s.st, false))
	s.snapshotX(sol)
	return sol, err
}

// finish records whether the state is a valid warm-start source.
func (s *Solver) finish(sol *Solution, err error) (*Solution, error) {
	s.warmOK = err == nil && sol != nil && sol.Status == Optimal
	return sol, err
}

// copyProblem deep-copies p into the Solver's owned problem, reusing backing
// arrays.
func (s *Solver) copyProblem(p *Problem) {
	if s.prob == nil {
		s.prob = &Problem{}
	}
	dst := s.prob
	dst.NumRows = p.NumRows
	dst.B = append(dst.B[:0], p.B...)
	dst.C = append(dst.C[:0], p.C...)
	dst.ColPtr = append(dst.ColPtr[:0], p.ColPtr...)
	dst.Rows = append(dst.Rows[:0], p.Rows...)
	dst.Vals = append(dst.Vals[:0], p.Vals...)
}

// checkDelta validates the delta against the current problem shape.
func (s *Solver) checkDelta(d *ProblemDelta, oldN int) error {
	m := s.prob.NumRows
	for _, bc := range d.SetB {
		if bc.Row < 0 || bc.Row >= m {
			return fmt.Errorf("lp: delta bound on row %d of %d", bc.Row, m)
		}
		if bc.B < 0 || math.IsNaN(bc.B) || math.IsInf(bc.B, 0) {
			return fmt.Errorf("lp: delta bound b[%d] = %v (packing form requires finite b ≥ 0)", bc.Row, bc.B)
		}
	}
	for _, oc := range d.SetC {
		if oc.Col < 0 || oc.Col >= oldN {
			return fmt.Errorf("lp: delta objective on column %d of %d", oc.Col, oldN)
		}
		if math.IsNaN(oc.C) || math.IsInf(oc.C, 0) {
			return fmt.Errorf("lp: non-finite delta objective c[%d]", oc.Col)
		}
	}
	for _, j := range d.RemoveCols {
		if j < 0 || j >= oldN {
			return fmt.Errorf("lp: delta removes column %d of %d", j, oldN)
		}
	}
	if len(d.AddCols) != len(d.AddC) {
		return fmt.Errorf("lp: %d added columns with %d objective coefficients", len(d.AddCols), len(d.AddC))
	}
	for k := range d.AddCols {
		col := &d.AddCols[k]
		if len(col.Rows) != len(col.Vals) {
			return fmt.Errorf("lp: added column %d has mismatched rows/vals", k)
		}
		for i, r := range col.Rows {
			if r < 0 || r >= m {
				return fmt.Errorf("lp: added column %d references row %d of %d", k, r, m)
			}
			if math.IsNaN(col.Vals[i]) || math.IsInf(col.Vals[i], 0) {
				return fmt.Errorf("lp: non-finite value in added column %d", k)
			}
		}
		if math.IsNaN(d.AddC[k]) || math.IsInf(d.AddC[k], 0) {
			return fmt.Errorf("lp: non-finite objective for added column %d", k)
		}
	}
	return nil
}

// substituteRemovedBasics pivots every basic variable about to be removed
// out of the basis, replacing it with a nonbasic row slack via a legal
// product-form update: the entering slack is the first of the column's own
// rows whose FTRAN'd pivot element is comfortably nonzero, so the patched
// basis is nonsingular by construction (the failure of naive substitution,
// which picks a slack blind and routinely lands on a zero pivot). Basic
// values are left stale — the post-delta x_B refresh recomputes them and
// dualRepair absorbs any infeasibility the swap introduced. Runs before the
// delta mutates the column storage, while the removed columns' row lists
// are still readable; variable indices stay in the pre-delta space and
// remapState translates them after compaction. Reports the number of swaps
// performed (zero means the basis, and so the duals, survived the delta
// untouched — what qualifies the re-solve for the fast finish) and ok=false
// when some removed basic column has no usable entering slack — then the
// warm start is abandoned.
func (s *Solver) substituteRemovedBasics(d *ProblemDelta, oldN int) (swaps int, ok bool) {
	st := s.st
	if len(d.RemoveCols) == 0 {
		return 0, true
	}
	if cap(s.removed) < oldN {
		s.removed = make([]bool, oldN)
	} else {
		s.removed = s.removed[:oldN]
		for i := range s.removed {
			s.removed[i] = false
		}
	}
	for _, j := range d.RemoveCols {
		s.removed[j] = true
	}
	for i, v := range st.basis {
		if v >= oldN || !s.removed[v] {
			continue
		}
		entered := false
		rows, _ := s.prob.Col(v)
		for _, r32 := range rows {
			q := oldN + int(r32)
			if st.posOf[q] >= 0 {
				continue // that row's slack is already basic
			}
			st.ftran(q) // d = B⁻¹ e_r
			dr := st.d[i]
			if dr < pivotSubstTol && dr > -pivotSubstTol {
				continue // pivot too small: basis would go singular
			}
			st.posOf[v] = -1
			st.basis[i] = q
			st.posOf[q] = i
			st.cB[i] = 0
			st.pushEta(i)
			swaps++
			entered = true
			break
		}
		if !entered {
			return swaps, false
		}
	}
	return swaps, true
}

// applyDelta mutates the owned problem: bounds, objective coefficients,
// column compaction (filling s.colMap with the old→new index map, -1 for
// removed), then appended columns.
func (s *Solver) applyDelta(d *ProblemDelta, oldN int) {
	p := s.prob
	for _, bc := range d.SetB {
		p.B[bc.Row] = bc.B
	}
	for _, oc := range d.SetC {
		p.C[oc.Col] = oc.C
	}
	s.colMap = resizeI(s.colMap, oldN)
	if len(d.RemoveCols) == 0 {
		for j := range s.colMap {
			s.colMap[j] = j
		}
	} else {
		if cap(s.removed) < oldN {
			s.removed = make([]bool, oldN)
		} else {
			s.removed = s.removed[:oldN]
			for i := range s.removed {
				s.removed[i] = false
			}
		}
		for _, j := range d.RemoveCols {
			s.removed[j] = true
		}
		w, nz := 0, 0
		for j := 0; j < oldN; j++ {
			if s.removed[j] {
				s.colMap[j] = -1
				continue
			}
			lo, hi := p.ColPtr[j], p.ColPtr[j+1]
			if nz != lo {
				copy(p.Rows[nz:nz+hi-lo], p.Rows[lo:hi])
				copy(p.Vals[nz:nz+hi-lo], p.Vals[lo:hi])
			}
			nz += hi - lo
			p.C[w] = p.C[j]
			s.colMap[j] = w
			w++
			p.ColPtr[w] = nz
		}
		p.ColPtr = p.ColPtr[:w+1]
		p.C = p.C[:w]
		p.Rows = p.Rows[:nz]
		p.Vals = p.Vals[:nz]
	}
	for k := range d.AddCols {
		p.AddColumn(d.AddC[k], d.AddCols[k].Rows, d.AddCols[k].Vals)
	}
}

// remapState translates the persistent state from the pre-delta variable
// space (oldN structurals) to the post-delta one (newN): basis entries,
// posOf, and the Devex reference weights (surviving columns keep their
// weight, added columns start at the unit reference, slacks shift).
func (s *Solver) remapState(oldN, newN int) {
	st := s.st
	m := st.m
	for i, v := range st.basis {
		if v < oldN {
			st.basis[i] = s.colMap[v] // ≥ 0: removed basics were substituted
		} else {
			st.basis[i] = newN + (v - oldN)
		}
	}
	st.n = newN
	st.posOf = resizeI(st.posOf, newN+m)
	for i := range st.posOf {
		st.posOf[i] = -1
	}
	for i, v := range st.basis {
		st.posOf[v] = i
	}
	if len(st.weights) == oldN+m {
		s.wScratch = resizeF(s.wScratch, newN+m)
		w := s.wScratch
		for j := 0; j < newN+m; j++ {
			w[j] = 1
		}
		for j := 0; j < oldN; j++ {
			if nj := s.colMap[j]; nj >= 0 {
				w[nj] = st.weights[j]
			}
		}
		for i := 0; i < m; i++ {
			w[newN+i] = st.weights[oldN+i]
		}
		st.weights, s.wScratch = w, st.weights
	}
}

// A *Solver satisfies Backend, so it can be plugged anywhere a one-shot
// solver is expected (e.g. core.Options.Solver) while still pooling its
// state arena across calls.
var _ Backend = (*Solver)(nil)
