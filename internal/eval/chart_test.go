package eval

import (
	"bytes"
	"strings"
	"testing"

	"github.com/ebsn/igepa/internal/stats"
)

// fixedTable builds a small table with known values for rendering tests.
func fixedTable() *Table {
	e := &Experiment{
		ID: "demo", Title: "demo sweep", XLabel: "n",
		Points: []Point{
			{Label: "n=1", X: 1},
			{Label: "n=2", X: 2},
			{Label: "n=3", X: 3},
		},
	}
	mk := func(vals ...float64) []Cell {
		cells := make([]Cell, len(vals))
		for i, v := range vals {
			cells[i] = Cell{stats.Summarize([]float64{v})}
		}
		return cells
	}
	return &Table{
		Experiment: e,
		Reps:       1,
		Series: []Series{
			{Algorithm: "alpha", Cells: mk(10, 20, 30)},
			{Algorithm: "beta", Cells: mk(8, 15, 22)},
		},
	}
}

func TestRenderChartBasics(t *testing.T) {
	var buf bytes.Buffer
	if err := RenderChart(&buf, fixedTable()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"demo sweep", "* alpha", "o beta", "(x: n)"} {
		if !strings.Contains(out, want) {
			t.Errorf("chart missing %q:\n%s", want, out)
		}
	}
	// the top series' maximum should appear above the bottom series' minimum
	starRow := -1
	oRow := -1
	for i, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "*") && starRow < 0 {
			starRow = i
		}
		if strings.Contains(line, "o") && oRow < 0 && strings.Contains(line, "|") {
			oRow = i
		}
	}
	if starRow < 0 {
		t.Fatal("no data glyphs plotted")
	}
}

func TestRenderChartMonotoneSeriesOrder(t *testing.T) {
	// alpha dominates beta at every point; in every column alpha's glyph
	// must appear on a row at or above beta's.
	var buf bytes.Buffer
	if err := RenderChart(&buf, fixedTable()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(buf.String(), "\n")
	// search only inside the plot area (after the '|' of grid rows), so the
	// title and legend text cannot shadow the glyphs
	colOf := func(glyph byte) (row, col int) {
		for r, line := range lines {
			bar := strings.IndexByte(line, '|')
			if bar < 0 {
				continue
			}
			if i := strings.IndexByte(line[bar+1:], glyph); i >= 0 {
				return r, bar + 1 + i
			}
		}
		return -1, -1
	}
	starRow, _ := colOf('*')
	oRow, _ := colOf('o')
	if starRow < 0 || oRow < 0 {
		t.Fatal("glyphs not found")
	}
	if starRow > oRow {
		t.Errorf("dominating series plotted below: * at row %d, o at row %d", starRow, oRow)
	}
}

func TestRenderChartFlatSeries(t *testing.T) {
	tab := fixedTable()
	for i := range tab.Series {
		for j := range tab.Series[i].Cells {
			tab.Series[i].Cells[j] = Cell{stats.Summarize([]float64{5})}
		}
	}
	var buf bytes.Buffer
	if err := RenderChart(&buf, tab); err != nil {
		t.Fatalf("flat series: %v", err)
	}
}

func TestRenderChartEmptyTable(t *testing.T) {
	if err := RenderChart(&bytes.Buffer{}, &Table{Experiment: &Experiment{}}); err == nil {
		t.Fatal("empty table accepted")
	}
}

func TestRenderChartSinglePoint(t *testing.T) {
	tab := fixedTable()
	tab.Experiment.Points = tab.Experiment.Points[:1]
	for i := range tab.Series {
		tab.Series[i].Cells = tab.Series[i].Cells[:1]
	}
	var buf bytes.Buffer
	if err := RenderChart(&buf, tab); err != nil {
		t.Fatal(err)
	}
}
