// Package bitset implements a dense, fixed-capacity bitset.
//
// Bitsets back the two hot data structures of the reproduction: conflict
// rows (is event v in conflict with event v'?) and social adjacency rows.
// Admissible-set enumeration probes conflict rows millions of times, so the
// representation is a flat []uint64 with no indirection.
package bitset

import "math/bits"

const wordBits = 64

// Set is a fixed-capacity bitset over [0, n). The zero value is an empty set
// of capacity 0; use New for a set with room for n bits.
type Set struct {
	words []uint64
	n     int
}

// New returns an empty Set with capacity for n bits.
func New(n int) *Set {
	if n < 0 {
		panic("bitset: negative size")
	}
	return &Set{words: make([]uint64, (n+wordBits-1)/wordBits), n: n}
}

// Len returns the capacity n the set was created with.
func (s *Set) Len() int { return s.n }

// Add sets bit i. It panics if i is out of range.
func (s *Set) Add(i int) {
	s.check(i)
	s.words[i/wordBits] |= 1 << (uint(i) % wordBits)
}

// Remove clears bit i. It panics if i is out of range.
func (s *Set) Remove(i int) {
	s.check(i)
	s.words[i/wordBits] &^= 1 << (uint(i) % wordBits)
}

// Contains reports whether bit i is set. It panics if i is out of range.
func (s *Set) Contains(i int) bool {
	s.check(i)
	return s.words[i/wordBits]&(1<<(uint(i)%wordBits)) != 0
}

func (s *Set) check(i int) {
	if i < 0 || i >= s.n {
		panic("bitset: index out of range")
	}
}

// Count returns the number of set bits.
func (s *Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Clear removes all bits.
func (s *Set) Clear() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// Clone returns an independent copy of s.
func (s *Set) Clone() *Set {
	w := make([]uint64, len(s.words))
	copy(w, s.words)
	return &Set{words: w, n: s.n}
}

// Union sets s = s ∪ t. Both sets must have the same capacity.
func (s *Set) Union(t *Set) {
	s.sameSize(t)
	for i, w := range t.words {
		s.words[i] |= w
	}
}

// Intersect sets s = s ∩ t. Both sets must have the same capacity.
func (s *Set) Intersect(t *Set) {
	s.sameSize(t)
	for i, w := range t.words {
		s.words[i] &= w
	}
}

// Intersects reports whether s ∩ t is nonempty, without allocating.
// This is the hot probe of admissible-set enumeration: "does candidate event
// v conflict with anything already chosen?" is one Intersects call between a
// conflict row and the partial set.
func (s *Set) Intersects(t *Set) bool {
	s.sameSize(t)
	for i, w := range t.words {
		if s.words[i]&w != 0 {
			return true
		}
	}
	return false
}

func (s *Set) sameSize(t *Set) {
	if s.n != t.n {
		panic("bitset: mismatched sizes")
	}
}

// ForEach calls fn for every set bit in increasing order.
func (s *Set) ForEach(fn func(i int)) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			fn(wi*wordBits + b)
			w &= w - 1
		}
	}
}

// Members appends the indices of all set bits to dst and returns it.
func (s *Set) Members(dst []int) []int {
	s.ForEach(func(i int) { dst = append(dst, i) })
	return dst
}
