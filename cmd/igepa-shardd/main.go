// Command igepa-shardd hosts one shard of a distributed serving cluster:
// a single-shard server.Server (internal/server) in cluster mode, owning the
// slice of the instance that shard -index of a -cluster-wide deployment
// would own inside one multi-shard process. A cmd/igepa-router in front
// speaks the public /v1 API, routes each user here by the shared hash, and
// drives this process's lease renewals over the /cluster/* wire protocol
// (see DESIGN.md §10).
//
// Usage:
//
//	igepa-shardd -listen :9001 -index 0 -cluster 4 -seed 42
//	igepa-shardd -listen :9002 -index 1 -cluster 4 -seed 42 \
//	    -wal shard1.wal -checkpoint shard1.ckpt
//
// Every shard of one cluster must be started with identical -workload,
// -events, -users, -seed, -batch, -planner and -cache flags (and the router
// with the same): the instance, the user→shard hash and the planner policy
// are what make the cluster's decisions bit-identical to a single
// -cluster-shard process. The router validates the shape via /healthz at
// startup. SIGINT/SIGTERM drain and exit cleanly, exactly like igepa-serve.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	httppprof "net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/ebsn/igepa"
	"github.com/ebsn/igepa/internal/server"
	"github.com/ebsn/igepa/internal/shard"
	"github.com/ebsn/igepa/internal/wal"
)

type config struct {
	listen  string
	index   int
	cluster int

	workload string
	events   int
	users    int
	seed     int64
	batch    int
	planner  string
	tau      float64
	guard    float64
	workers  int
	cache    int

	flush      time.Duration
	queueDepth int
	freeze     time.Duration
	pprof      bool
	slowlog    time.Duration

	wal             string
	walSync         string
	walSyncInterval time.Duration
	checkpoint      string
}

func main() {
	var cfg config
	flag.StringVar(&cfg.listen, "listen", ":9001", "address to serve on")
	flag.IntVar(&cfg.index, "index", 0, "this process's shard index within the cluster")
	flag.IntVar(&cfg.cluster, "cluster", 1, "cluster width S (number of shard processes)")
	flag.StringVar(&cfg.workload, "workload", "meetup", "instance workload: meetup or synthetic")
	flag.IntVar(&cfg.events, "events", 80, "number of events (0 = workload default)")
	flag.IntVar(&cfg.users, "users", 600, "number of users (0 = workload default)")
	flag.Int64Var(&cfg.seed, "seed", 1, "seed for instance and user→shard hash (must match the whole cluster)")
	flag.IntVar(&cfg.batch, "batch", 0, "arrivals between lease renewals (0 = default; must match the router)")
	flag.StringVar(&cfg.planner, "planner", "greedy", "per-shard policy: greedy or threshold")
	flag.Float64Var(&cfg.tau, "tau", 0.5, "threshold planner: admission weight")
	flag.Float64Var(&cfg.guard, "guard", 0.25, "threshold planner: reserved capacity fraction")
	flag.IntVar(&cfg.workers, "workers", 0, "worker-pool bound (0 = all cores; results identical)")
	flag.IntVar(&cfg.cache, "cache", 0, "admissible-set cache entries (0 = disabled)")
	flag.DurationVar(&cfg.flush, "flush", 0, "micro-batch flush deadline (0 = default)")
	flag.IntVar(&cfg.queueDepth, "queue", 0, "bounded queue depth (0 = default)")
	flag.DurationVar(&cfg.freeze, "freeze-timeout", 0, "wire-renewal freeze watchdog (0 = default)")
	flag.BoolVar(&cfg.pprof, "pprof", false, "expose net/http/pprof handlers under /debug/pprof/")
	flag.DurationVar(&cfg.slowlog, "slowlog", 0, "log arrivals and renewal rounds slower than this to stderr (0 = off)")
	flag.StringVar(&cfg.wal, "wal", "", "write-ahead log path (crash-safe serving + warm boot)")
	flag.StringVar(&cfg.walSync, "wal-sync", "interval", "WAL fsync policy: always, interval or off")
	flag.DurationVar(&cfg.walSyncInterval, "wal-sync-interval", 0, "background fsync period under -wal-sync interval (0 = default)")
	flag.StringVar(&cfg.checkpoint, "checkpoint", "", "checkpoint file (written on shutdown and POST /admin/checkpoint)")
	flag.Parse()

	if err := run(os.Stdout, cfg); err != nil {
		fmt.Fprintln(os.Stderr, "igepa-shardd:", err)
		os.Exit(1)
	}
}

const shutdownGrace = 10 * time.Second

func run(w *os.File, cfg config) error {
	ln, err := net.Listen("tcp", cfg.listen)
	if err != nil {
		return err
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	return serveListenerCtx(ctx, w, ln, cfg)
}

// serveListenerCtx hosts the cluster shard on ln until ctx fires, then drains
// and closes — the same clean-shutdown path as igepa-serve.
func serveListenerCtx(ctx context.Context, w *os.File, ln net.Listener, cfg config) error {
	in, err := makeInstance(cfg)
	if err != nil {
		return err
	}
	kind, err := plannerKind(cfg.planner)
	if err != nil {
		return err
	}
	sync := wal.SyncInterval
	if cfg.walSync != "" {
		if sync, err = wal.ParseSyncPolicy(cfg.walSync); err != nil {
			return err
		}
	}
	srv, err := server.New(in, server.Config{
		Shard: shard.Options{
			Shards: 1, ClusterShards: cfg.cluster, ClusterIndex: cfg.index,
			Batch: cfg.batch, Workers: cfg.workers, Seed: cfg.seed,
			Planner: kind, Tau: cfg.tau, Guard: cfg.guard,
			CacheSize: cfg.cache,
		},
		FlushInterval:   cfg.flush,
		QueueDepth:      cfg.queueDepth,
		FreezeTimeout:   cfg.freeze,
		WALPath:         cfg.wal,
		WALSync:         sync,
		WALSyncInterval: cfg.walSyncInterval,
		CheckpointPath:  cfg.checkpoint,
		SlowLog:         cfg.slowlog,
	})
	if err != nil {
		return err
	}
	defer srv.Close()
	fmt.Fprintf(w, "igepa-shardd: shard %d/%d on %s — |V|=%d |U|=%d (router drives /cluster/*; /v1 serves owned users)\n",
		cfg.index, cfg.cluster, ln.Addr(), in.NumEvents(), in.NumUsers())
	hs := &http.Server{Handler: withPprof(srv, cfg.pprof)}
	served := make(chan struct{})
	shutdownDone := make(chan struct{})
	go func() {
		defer close(shutdownDone)
		select {
		case <-ctx.Done():
			fmt.Fprintf(w, "igepa-shardd: signal received, draining\n")
			sctx, cancel := context.WithTimeout(context.Background(), shutdownGrace)
			hs.Shutdown(sctx)
			cancel()
			if !srv.Drain(shutdownGrace) {
				fmt.Fprintln(os.Stderr, "igepa-shardd: drain timed out; closing anyway")
			}
			if cfg.checkpoint != "" {
				if err := srv.Checkpoint(); err != nil {
					fmt.Fprintln(os.Stderr, "igepa-shardd: checkpoint on shutdown:", err)
				}
			}
		case <-served:
		}
	}()
	err = hs.Serve(ln)
	close(served)
	<-shutdownDone
	if err != nil && !errors.Is(err, http.ErrServerClosed) && !errors.Is(err, net.ErrClosed) {
		return err
	}
	return nil
}

// withPprof mounts the net/http/pprof handlers under /debug/pprof/ in front
// of the shard handler when enabled (explicit registration on a private mux,
// not the DefaultServeMux import side effect).
func withPprof(h http.Handler, enabled bool) http.Handler {
	if !enabled {
		return h
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", httppprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", httppprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", httppprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", httppprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", httppprof.Trace)
	mux.Handle("/", h)
	return mux
}

func makeInstance(cfg config) (*igepa.Instance, error) {
	switch cfg.workload {
	case "meetup":
		return igepa.Meetup(igepa.MeetupConfig{
			Seed: cfg.seed, NumEvents: cfg.events, NumUsers: cfg.users,
		})
	case "synthetic":
		return igepa.Synthetic(igepa.SyntheticConfig{
			Seed: cfg.seed, NumEvents: cfg.events, NumUsers: cfg.users,
		})
	default:
		return nil, fmt.Errorf("unknown workload %q (want meetup or synthetic)", cfg.workload)
	}
}

func plannerKind(name string) (shard.PlannerKind, error) {
	switch name {
	case "greedy":
		return shard.PlannerGreedy, nil
	case "threshold":
		return shard.PlannerThreshold, nil
	default:
		return 0, fmt.Errorf("unknown planner %q (want greedy or threshold)", name)
	}
}
