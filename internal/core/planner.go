package core

import (
	"fmt"
	"slices"
	"sort"

	"github.com/ebsn/igepa/internal/admissible"
	"github.com/ebsn/igepa/internal/conflict"
	"github.com/ebsn/igepa/internal/lp"
	"github.com/ebsn/igepa/internal/model"
	"github.com/ebsn/igepa/internal/par"
	"github.com/ebsn/igepa/internal/xrand"
)

// Delta names the parts of the instance a caller mutated since the previous
// solve. The Planner re-derives exactly those parts — weight-cache rows,
// bidder lists, admissible sets and LP columns for the listed users, LP row
// bounds for the listed events — and warm-starts the LP from the previous
// basis. The user and event counts of the instance must not change; model
// departures as a user whose Bids were set to nil and closed events as
// Capacity 0.
type Delta struct {
	// Users whose Bids or Capacity changed (bids arrived, expired, or the
	// user left).
	Users []int
	// Events whose Capacity changed (seats granted elsewhere, capacity
	// raised).
	Events []int
}

// Empty reports whether the delta names nothing.
func (d *Delta) Empty() bool { return len(d.Users) == 0 && len(d.Events) == 0 }

// Planner is the incremental mode of LPPacking: it owns a persistent
// warm-starting LP solver (lp.Solver), the enumeration state behind the
// benchmark LP, and — under the default repair order — the sampled and
// repaired arrangement itself, so a stream of small instance deltas costs
// work proportional to the delta instead of a from-scratch pipeline run.
// The serving stack uses it to keep a live LP bound (and arrangement) while
// bids arrive and capacities shrink.
//
// The caller mutates the instance in place (Users[u].Bids, Users[u].Capacity,
// Events[v].Capacity), then calls Update naming what changed. Derived caches
// (weight rows, bidder lists) are patched in place by the Planner; results
// after an Update are identical to rebuilding a Planner on the mutated
// instance except for LP-degenerate alternate optima (the objective agrees
// to round-off, and every solution certifies against the current LP).
//
// Determinism contract: given the same Options.Seed, Update's incremental
// rounding produces results bit-identical to a full Round() on the same
// planner — Round is retained as the from-scratch oracle and the pinned
// equivalence suite drives both paths against each other. The incremental
// rounding engages when Options.Repair is RepairByIndex (the default; the
// ablation orders fall back to a full re-round per Update).
//
// The Result returned by Update aliases planner-owned state: its
// Arrangement is valid until the next Update call (clone it to keep it),
// mirroring how lp.Solution aliases solver buffers. Round always returns a
// fresh arrangement.
//
// A Planner is not safe for concurrent use. Close releases the solver state
// back to the dimension-keyed arena pool.
type Planner struct {
	in   *model.Instance
	opt  Options
	conf *conflict.Matrix

	sets       [][]admissible.Set
	truncated  []bool
	truncCount int      // maintained incrementally across re-enumerations
	owner      [][2]int // column -> (user, set index), aligned with the LP

	solver *lp.Solver
	sol    *lp.Solution

	inc     *incState // persistent rounding state (nil until first needed)
	lastRes *Result   // most recent Update result (empty-delta short-circuit)

	// scratch reused across Updates so the steady state allocates ~nothing
	changed   []bool   // user membership of the current delta
	users     []int    // sorted, deduplicated delta users
	ownerNext [][2]int // double buffer for the owner rebuild
	ones      []float64
	rowBuf    []int
	lpd       lp.ProblemDelta

	// set-diff scratch: matching a changed user's old admissible sets to
	// their re-enumerated ones, so surviving sets keep their LP columns (a
	// bid arrival becomes pure column additions — no basis churn, and the
	// solver's fast finish prices only the new columns)
	oldSets  [][]admissible.Set
	oldOff   []int32 // per changed user: offset into matchOld
	newOff   []int32 // per changed user: offset into newDone
	matchOld []int32 // old set index -> new set index, -1 removed
	newDone  []bool  // new set already matched (no column append)

	// colOff/colIdx map (user, set index) -> LP column: colIdx[colOff[u]+si]
	// is set si's column, rebuilt from the owner map after column churn.
	// The incremental sampler reads x through it.
	colOff []int32
	colIdx []int32

	// fullRound forces the pre-incremental path — full cache rebuild, full
	// instance validation, from-scratch re-round per Update. It is the
	// baseline leg of BenchmarkPlannerUpdate and not reachable through
	// Options.
	fullRound bool
}

// NewPlanner builds the pipeline state for the instance, solves the
// benchmark LP cold, and returns a Planner ready for Update calls.
// Options.Presolve and Options.Solver are incompatible with incremental
// operation (presolve re-maps the column space under the solver's feet, and
// the persistent solver is the revised simplex by construction); setting
// either is an error.
func NewPlanner(in *model.Instance, opt Options) (*Planner, error) {
	if opt.Presolve {
		return nil, fmt.Errorf("core: incremental planner does not support Presolve")
	}
	if opt.Solver != nil {
		return nil, fmt.Errorf("core: incremental planner drives its own persistent solver; Options.Solver must be nil")
	}
	if err := in.Check(); err != nil {
		return nil, err
	}
	if alpha := opt.Alpha; alpha != 0 && (alpha < 0 || alpha > 1) {
		return nil, fmt.Errorf("core: alpha = %v outside (0,1]", alpha)
	}
	in.Weights()
	p := &Planner{
		in:        in,
		opt:       opt,
		conf:      conflict.FromFunc(in.NumEvents(), in.Conflicts),
		truncated: make([]bool, in.NumUsers()),
		solver:    lp.NewSolver(opt.lpConfig()),
	}
	if opt.Repair == RepairByIndex {
		// the incremental rounding path re-samples exactly the users whose
		// LP column mass moved between solves
		p.solver.TrackChangedColumns(true)
	}
	workers := par.Workers(opt.Workers)
	p.sets = make([][]admissible.Set, in.NumUsers())
	enumerateInto(in, p.conf, p.sets, p.truncated, nil, opt.MaxSetsPerUser, workers)
	for _, t := range p.truncated {
		if t {
			p.truncCount++
		}
	}
	prob, owner := BuildBenchmarkLP(in, p.sets)
	p.owner = owner
	sol, err := p.solver.Solve(prob)
	if err != nil {
		return nil, fmt.Errorf("core: benchmark LP: %w", err)
	}
	p.sol = sol
	return p, nil
}

// Close releases the persistent solver state to the arena pool. The Planner
// must not be used afterwards.
func (p *Planner) Close() {
	if p.solver != nil {
		p.solver.Release()
	}
}

// Stats exposes the underlying solver's warm/cold counters.
func (p *Planner) Stats() lp.SolverStats { return p.solver.Stats() }

// Objective returns the current benchmark-LP optimum — the live upper bound
// on the optimal utility of the current instance.
func (p *Planner) Objective() float64 { return p.sol.Objective }

// Update re-syncs the Planner with the instance after the caller's mutation
// and returns the rounded result for the updated instance. Every stage is
// delta-scoped: the weight cache and bidder lists are patched for just the
// named users, validation covers just the named users and events, the LP is
// warm re-solved from the previous basis, and the rounding re-samples only
// users whose LP column mass moved — repair and utility maintenance touch
// only the events and attendees those changes reached. An empty delta
// short-circuits to the cached result without re-solving anything.
//
// The returned Result's Arrangement aliases planner state and is valid
// until the next Update; see the type comment.
func (p *Planner) Update(d Delta) (*Result, error) {
	in := p.in
	nu := in.NumUsers()
	for _, u := range d.Users {
		if u < 0 || u >= nu {
			return nil, fmt.Errorf("core: delta names unknown user %d", u)
		}
	}
	for _, v := range d.Events {
		if v < 0 || v >= in.NumEvents() {
			return nil, fmt.Errorf("core: delta names unknown event %d", v)
		}
	}
	if d.Empty() && !p.fullRound {
		return p.cachedResult()
	}

	users := p.sortedUsers(d.Users)
	if p.fullRound {
		if len(users) > 0 {
			// Bids changed: drop the CSR weight cache and bidder lists
			// wholesale (the pre-incremental behavior).
			in.Invalidate()
		}
		if err := in.Check(); err != nil {
			return nil, fmt.Errorf("core: instance invalid after mutation: %w", err)
		}
	} else {
		// Validate before patching: the delta-scoped Invalidate indexes
		// caches by the mutated bids, so bad input must be rejected while
		// the snapshots are still untouched.
		if err := in.CheckUsers(users); err != nil {
			p.lastRes = nil
			return nil, fmt.Errorf("core: instance invalid after mutation: %w", err)
		}
		if err := in.CheckEvents(d.Events); err != nil {
			p.lastRes = nil
			return nil, fmt.Errorf("core: instance invalid after mutation: %w", err)
		}
		if len(users) > 0 {
			in.Invalidate(users...)
		}
	}
	in.Weights()

	p.lpd.SetB = p.lpd.SetB[:0]
	p.lpd.SetC = p.lpd.SetC[:0]
	p.lpd.RemoveCols = p.lpd.RemoveCols[:0]
	p.lpd.AddCols = p.lpd.AddCols[:0]
	p.lpd.AddC = p.lpd.AddC[:0]
	if len(users) > 0 {
		p.oldSets = p.oldSets[:0]
		for _, u := range users {
			p.oldSets = append(p.oldSets, p.sets[u])
		}
		p.reenumerate(users)
		p.rebuildColumns(users, p.oldSets)
	}
	for _, v := range d.Events {
		p.lpd.SetB = append(p.lpd.SetB, lp.BoundChange{Row: nu + v, B: float64(in.Events[v].Capacity)})
	}

	sol, err := p.solver.Resolve(p.lpd)
	if err != nil {
		p.lastRes = nil
		return nil, fmt.Errorf("core: benchmark LP re-solve: %w", err)
	}
	p.sol = sol

	if p.fullRound || p.opt.Repair != RepairByIndex {
		res, err := p.Round()
		if err != nil {
			return nil, err
		}
		p.lastRes = res
		return res, nil
	}
	res := p.updateIncremental(users, d.Events)
	p.lastRes = res
	return res, nil
}

// cachedResult serves an empty delta: nothing changed, so the previous
// result is still the answer — no cache sync, no validation, no LP solve,
// no re-round.
func (p *Planner) cachedResult() (*Result, error) {
	if p.lastRes == nil {
		if p.opt.Repair == RepairByIndex {
			if p.inc == nil {
				p.rebuildInc()
			}
			p.lastRes = p.assembleResult()
		} else {
			res, err := p.Round()
			if err != nil {
				return nil, err
			}
			p.lastRes = res
		}
	}
	return p.lastRes, nil
}

// sortedUsers copies the delta's user list into the planner's scratch,
// sorted and deduplicated.
func (p *Planner) sortedUsers(us []int) []int {
	p.users = append(p.users[:0], us...)
	sort.Ints(p.users)
	p.users = dedupeSorted(p.users)
	return p.users
}

// reenumerate re-derives the changed users' admissible sets, keeping the
// truncated-user count current without rescanning every flag.
func (p *Planner) reenumerate(users []int) {
	for _, u := range users {
		if p.truncated[u] {
			p.truncCount--
		}
	}
	enumerateInto(p.in, p.conf, p.sets, p.truncated, users, p.opt.MaxSetsPerUser, par.Workers(p.opt.Workers))
	for _, u := range users {
		if p.truncated[u] {
			p.truncCount++
		}
	}
}

// matchLimit bounds the per-user O(|old|·|new|) set matching; past it the
// diff degrades to remove-all/add-all (the pre-diff behavior), which is
// still correct — matching only saves work.
const matchLimit = 4096

// setsEqual reports whether two admissible sets are the same LP column:
// identical event lists and bit-identical weight (weights of surviving bids
// re-derive bit-equal from the patched cache, so a set untouched by the
// delta always matches).
func setsEqual(a, b *admissible.Set) bool {
	return a.Weight == b.Weight && slices.Equal(a.Events, b.Events)
}

// rebuildColumns re-syncs the changed users' LP columns with their
// re-enumerated admissible sets — by diff, not wholesale replacement: each
// user's old sets are matched (order-preserving) against the new ones, and
// only vanished sets' columns are removed, only genuinely new sets'
// appended. A pure bid arrival therefore adds columns without touching the
// basis, which is what lets the solver's fast finish price just the delta.
// The surviving columns keep their relative order (lp.ProblemDelta's
// contract) with their owner entries rewritten to the new set indices. All
// delta storage (row lists, the all-ones coefficient vector, the owner
// double buffer) is planner-owned scratch; lp.Solver copies columns on
// application.
func (p *Planner) rebuildColumns(users []int, oldSets [][]admissible.Set) {
	nu := p.in.NumUsers()
	if cap(p.changed) < nu {
		p.changed = make([]bool, nu)
	} else {
		p.changed = p.changed[:nu]
		for i := range p.changed {
			p.changed[i] = false
		}
	}
	for _, u := range users {
		p.changed[u] = true
	}

	// Per-user offsets into the flat match arenas.
	oldTot, newTot := 0, 0
	p.oldOff = resizeI32(p.oldOff, nu)
	p.newOff = resizeI32(p.newOff, nu)
	for i, u := range users {
		p.oldOff[u] = int32(oldTot)
		oldTot += len(oldSets[i])
		p.newOff[u] = int32(newTot)
		newTot += len(p.sets[u])
	}
	p.matchOld = resizeI32(p.matchOld, oldTot)
	if cap(p.newDone) < newTot {
		p.newDone = make([]bool, newTot)
	}
	p.newDone = p.newDone[:newTot]
	for i := range p.newDone {
		p.newDone[i] = false
	}
	for i, u := range users {
		o, n := oldSets[i], p.sets[u]
		mo := p.matchOld[p.oldOff[u] : int(p.oldOff[u])+len(o)]
		nd := p.newDone[p.newOff[u] : int(p.newOff[u])+len(n)]
		if len(o)*len(n) > matchLimit {
			for k := range mo {
				mo[k] = -1
			}
			continue
		}
		j := 0
		for k := range o {
			mo[k] = -1
			for jj := j; jj < len(n); jj++ {
				if setsEqual(&o[k], &n[jj]) {
					mo[k] = int32(jj)
					nd[jj] = true
					j = jj + 1
					break
				}
			}
		}
	}

	newOwner := p.ownerNext[:0]
	for j, ow := range p.owner {
		u := ow[0]
		if !p.changed[u] {
			newOwner = append(newOwner, ow)
			continue
		}
		if m := p.matchOld[int(p.oldOff[u])+ow[1]]; m >= 0 {
			newOwner = append(newOwner, [2]int{u, int(m)})
		} else {
			p.lpd.RemoveCols = append(p.lpd.RemoveCols, j)
		}
	}

	maxH, rows := 0, 0
	for _, u := range users {
		nd := p.newDone[p.newOff[u] : int(p.newOff[u])+len(p.sets[u])]
		for si, s := range p.sets[u] {
			if nd[si] {
				continue
			}
			h := len(s.Events) + 1
			rows += h
			if h > maxH {
				maxH = h
			}
		}
	}
	p.ones = onesInto(p.ones, maxH)
	if cap(p.rowBuf) < rows {
		p.rowBuf = make([]int, 0, rows)
	}
	p.rowBuf = p.rowBuf[:0]
	for _, u := range users {
		nd := p.newDone[p.newOff[u] : int(p.newOff[u])+len(p.sets[u])]
		for si, s := range p.sets[u] {
			if nd[si] {
				continue
			}
			lo := len(p.rowBuf)
			p.rowBuf = append(p.rowBuf, u)
			for _, v := range s.Events {
				p.rowBuf = append(p.rowBuf, nu+v)
			}
			col := p.rowBuf[lo:len(p.rowBuf):len(p.rowBuf)]
			p.lpd.AddCols = append(p.lpd.AddCols, lp.Column{Rows: col, Vals: p.ones[:len(col)]})
			p.lpd.AddC = append(p.lpd.AddC, s.Weight)
			newOwner = append(newOwner, [2]int{u, si})
		}
	}
	p.ownerNext = p.owner[:0]
	p.owner = newOwner
}

// buildColMap refreshes the (user, set index) -> column map from the owner
// map.
func (p *Planner) buildColMap() {
	nu := p.in.NumUsers()
	p.colOff = resizeI32(p.colOff, nu+1)
	total := 0
	for u := 0; u < nu; u++ {
		p.colOff[u] = int32(total)
		total += len(p.sets[u])
	}
	p.colOff[nu] = int32(total)
	p.colIdx = resizeI32(p.colIdx, total)
	for j, ow := range p.owner {
		p.colIdx[int(p.colOff[ow[0]])+ow[1]] = int32(j)
	}
}

// resizeI32 returns buf with length n, reusing capacity.
func resizeI32(buf []int32, n int) []int32 {
	if cap(buf) < n {
		return make([]int32, n)
	}
	return buf[:n]
}

// alpha returns the effective sampling rate.
func (p *Planner) alpha() float64 {
	if p.opt.Alpha == 0 {
		return 1
	}
	return p.opt.Alpha
}

// Round samples, repairs and scores an arrangement from the current LP
// solution from scratch — the tail of Algorithm 1 over the incremental
// state. It is deterministic given Options.Seed, so calling it twice
// without an Update in between returns identical results. It never touches
// the maintained incremental rounding state, which is what makes it the
// oracle the equivalence tests pin Update against.
func (p *Planner) Round() (*Result, error) {
	return finish(p.in, p.conf, p.sets, p.owner, p.solver.Problem(), p.sol,
		p.alpha(), p.opt, xrand.New(p.opt.Seed), p.truncCount)
}

// onesInto grows (if needed) and returns a shared all-ones coefficient
// slice of capacity ≥ n; callers slice it per column instead of allocating.
func onesInto(buf []float64, n int) []float64 {
	if cap(buf) < n {
		buf = make([]float64, n)
		for i := range buf {
			buf[i] = 1
		}
		return buf
	}
	return buf[:cap(buf)]
}

// dedupeSorted compacts consecutive duplicates in a sorted slice.
func dedupeSorted(s []int) []int {
	out := s[:0]
	for i, v := range s {
		if i == 0 || v != s[i-1] {
			out = append(out, v)
		}
	}
	return out
}

// enumerateInto (re-)enumerates admissible sets for the given users (nil
// means every user) on the bounded worker pool, writing each user's sets and
// truncation flag into the caller's slots.
func enumerateInto(in *model.Instance, conf *conflict.Matrix, sets [][]admissible.Set,
	trunc []bool, users []int, maxSets, workers int) {
	wc := in.Weights()
	body := func(u int) {
		usr := &in.Users[u]
		w := func(v int) float64 { return wc.Of(u, v) }
		r := admissible.Enumerate(usr.Bids, usr.Capacity, conf, w, admissible.Config{MaxSetsPerUser: maxSets})
		sets[u] = r.Sets
		trunc[u] = r.Truncated
	}
	if users == nil {
		par.For(workers, in.NumUsers(), 16, body)
		return
	}
	par.For(workers, len(users), 16, func(i int) { body(users[i]) })
}
