package main

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/ebsn/igepa/internal/server"
	"github.com/ebsn/igepa/internal/shard"
	"github.com/ebsn/igepa/internal/workload"
)

func startTarget(t *testing.T) (*server.Server, *httptest.Server) {
	t.Helper()
	in, err := workload.Synthetic(workload.SyntheticConfig{
		Seed: 2, NumEvents: 12, NumUsers: 80,
		MaxEventCap: 10, MaxUserCap: 3, MinBids: 2, MaxBids: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(in, server.Config{
		Shard:         shard.Options{Shards: 2, Batch: 16, Seed: 2, CacheSize: 256},
		FlushInterval: 100 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, ts
}

func captureRun(t *testing.T, cfg config) string {
	t.Helper()
	f, err := os.CreateTemp(t.TempDir(), "loadgen-out")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := run(f, cfg); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(f.Name())
	if err != nil {
		t.Fatal(err)
	}
	return string(raw)
}

func TestOpenLoop(t *testing.T) {
	srv, ts := startTarget(t)
	out := captureRun(t, config{
		addr: ts.URL, mode: "open", rate: 50000, n: 60,
		seed: 1, timeout: 10 * time.Second,
	})
	if !strings.Contains(out, "open workload") || !strings.Contains(out, "sustained throughput") {
		t.Fatalf("report missing sections:\n%s", out)
	}
	st := srv.Stats()
	if st.Decided < 50 {
		t.Fatalf("only %d decided of 60 open-loop arrivals", st.Decided)
	}
}

func TestClosedLoopHitsCache(t *testing.T) {
	srv, ts := startTarget(t)
	out := captureRun(t, config{
		addr: ts.URL, mode: "closed", conc: 4, burst: 2, cycles: 3,
		think: time.Millisecond, seed: 1, timeout: 10 * time.Second,
	})
	if !strings.Contains(out, "closed workload") || !strings.Contains(out, "cache") {
		t.Fatalf("report missing sections:\n%s", out)
	}
	srv.Drain(5 * time.Second)
	st := srv.Stats()
	if st.Decided == 0 || st.Cancels == 0 {
		t.Fatalf("closed loop did not cycle: %+v", st)
	}
	if st.Cache.Hits == 0 {
		t.Fatalf("repeat-bid closed loop produced no cache hits: %+v", st.Cache)
	}
}

// TestMetricsSummaryDeltaRule pins the scrape-side per-run accounting:
// monotonic counters are reported as after−before deltas against the pre-run
// snapshot, clamp at zero across a counter reset (server restart mid-run),
// and fall back to labeled lifetime totals when the pre-run scrape failed.
func TestMetricsSummaryDeltaRule(t *testing.T) {
	var val atomic.Int64
	val.Store(100)
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, "# TYPE igepa_slow_arrivals_total counter\nigepa_slow_arrivals_total %d\n", val.Load())
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()
	hc := &http.Client{Timeout: time.Second}

	before := scrapeFamilies(hc, ts.URL)
	if before == nil {
		t.Fatal("pre-run scrape failed")
	}
	val.Store(107)
	var buf strings.Builder
	metricsSummary(&buf, hc, ts.URL, before)
	if out := buf.String(); !strings.Contains(out, "counters: this run") || !strings.Contains(out, "slow arrivals 7") {
		t.Fatalf("want per-run delta 7:\n%s", out)
	}

	buf.Reset()
	metricsSummary(&buf, hc, ts.URL, nil)
	if out := buf.String(); !strings.Contains(out, "server lifetime") || !strings.Contains(out, "slow arrivals 107") {
		t.Fatalf("want labeled lifetime totals without a snapshot:\n%s", out)
	}

	val.Store(3) // counter reset below the snapshot: delta clamps at 0
	buf.Reset()
	metricsSummary(&buf, hc, ts.URL, before)
	if out := buf.String(); !strings.Contains(out, "slow arrivals 0") {
		t.Fatalf("want clamped delta 0 after counter reset:\n%s", out)
	}
}

func TestRunRejectsBadTarget(t *testing.T) {
	null, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer null.Close()
	if err := run(null, config{addr: "http://127.0.0.1:1", mode: "open", timeout: time.Second}); err == nil {
		t.Error("unreachable target accepted")
	}
	_, ts := startTarget(t)
	if err := run(null, config{addr: ts.URL, mode: "sideways", timeout: time.Second}); err == nil {
		t.Error("unknown mode accepted")
	}
}
