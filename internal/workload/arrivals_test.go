package workload

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func TestSyntheticArrivalsShape(t *testing.T) {
	arr := SyntheticArrivals(7, 500, 2000)
	if len(arr) != 500 {
		t.Fatalf("got %d arrivals, want 500", len(arr))
	}
	seen := make([]bool, 500)
	prev := int64(-1)
	for i, a := range arr {
		if a.User < 0 || a.User >= 500 || seen[a.User] {
			t.Fatalf("arrival %d: bad or duplicate user %d", i, a.User)
		}
		seen[a.User] = true
		if a.TMillis < prev {
			t.Fatalf("arrival %d: timestamp %d before %d", i, a.TMillis, prev)
		}
		prev = a.TMillis
	}
	if again := SyntheticArrivals(7, 500, 2000); !reflect.DeepEqual(arr, again) {
		t.Error("SyntheticArrivals not deterministic")
	}
	if same := SyntheticArrivals(8, 500, 2000); reflect.DeepEqual(arr, same) {
		t.Error("different seeds produced identical streams")
	}
}

func TestArrivalsRoundTrip(t *testing.T) {
	arr := SyntheticArrivals(3, 200, 0)
	var buf bytes.Buffer
	if err := WriteArrivals(&buf, arr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadArrivals(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(arr, got) {
		t.Error("arrival log round-trip mismatch")
	}
	if !reflect.DeepEqual(ArrivalOrder(arr), ArrivalOrder(got)) {
		t.Error("arrival order mismatch after round-trip")
	}
}

func TestReadArrivalsRejectsMalformed(t *testing.T) {
	cases := []string{
		`{"t_ms": 1, "user": -2}`,
		"{\"t_ms\": 5, \"user\": 1}\n{\"t_ms\": 3, \"user\": 2}",
		`not json`,
	}
	for i, c := range cases {
		if _, err := ReadArrivals(strings.NewReader(c)); err == nil {
			t.Errorf("case %d: malformed log accepted", i)
		}
	}
	got, err := ReadArrivals(strings.NewReader("\n{\"t_ms\": 1, \"user\": 0}\n\n"))
	if err != nil || len(got) != 1 {
		t.Errorf("blank-line handling: got %v err %v", got, err)
	}
}
