// Package workload generates the two dataset families of the paper's
// evaluation (§IV): synthetic instances parameterized exactly by the Table I
// factors (|V|, |U|, max cv, max cu, pcf, pdeg), and a Meetup-like instance
// reproducing the construction rules the paper applied to its San Francisco
// crawl (see meetup.go and DESIGN.md §2 for the substitution rationale).
package workload

import (
	"fmt"

	"github.com/ebsn/igepa/internal/conflict"
	"github.com/ebsn/igepa/internal/interest"
	"github.com/ebsn/igepa/internal/model"
	"github.com/ebsn/igepa/internal/social"
	"github.com/ebsn/igepa/internal/xrand"
)

// SyntheticConfig holds the Table I factors plus the bid-model knobs the
// paper describes qualitatively ("users tend to bid a group of similar and
// often conflicting events ... bids are sampled dependently from several
// sets of conflicting events").
type SyntheticConfig struct {
	NumEvents   int     // |V|; default 200
	NumUsers    int     // |U|; default 2000
	MaxEventCap int     // max cv, capacities ~ U[1, max cv]; default 50
	MaxUserCap  int     // max cu, capacities ~ U[1, max cu]; default 4
	PConflict   float64 // pcf, pairwise conflict probability; default 0.3
	PFriend     float64 // pdeg, pairwise friendship probability; default 0.5
	Beta        float64 // β; default 0.5 (the evaluation's setting)

	// MinBids/MaxBids bound the bids per user (uniform); defaults 4 and 8.
	MinBids, MaxBids int
	// GroupBias is the probability that each bid is drawn from the user's
	// chosen conflict groups rather than uniformly from all events;
	// default 0.8.
	GroupBias float64
	// Seed drives all randomness; the same config and seed always produce
	// the identical instance.
	Seed int64
}

// Defaults are the Table I settings.
func (c SyntheticConfig) withDefaults() SyntheticConfig {
	if c.NumEvents == 0 {
		c.NumEvents = 200
	}
	if c.NumUsers == 0 {
		c.NumUsers = 2000
	}
	if c.MaxEventCap == 0 {
		c.MaxEventCap = 50
	}
	if c.MaxUserCap == 0 {
		c.MaxUserCap = 4
	}
	if c.PConflict == 0 {
		c.PConflict = 0.3
	}
	if c.PFriend == 0 {
		c.PFriend = 0.5
	}
	if c.Beta == 0 {
		c.Beta = 0.5
	}
	if c.MinBids == 0 {
		c.MinBids = 4
	}
	if c.MaxBids == 0 {
		c.MaxBids = 8
	}
	if c.GroupBias == 0 {
		c.GroupBias = 0.8
	}
	return c
}

// Synthetic generates an instance per Table I:
//
//   - event capacities ~ U[1, max cv], user capacities ~ U[1, max cu];
//   - each event pair conflicts independently with probability pcf;
//   - each user pair is befriended independently with probability pdeg
//     (Erdős–Rényi G(|U|, pdeg)) and degrees feed D(G,u);
//   - interests SI(u,v) are i.i.d. uniform on [0,1);
//   - bids are sampled dependently from conflict groups: each user picks one
//     or two greedy conflict cliques of the realized conflict graph and
//     draws most bids inside them (GroupBias), the rest uniformly.
func Synthetic(cfg SyntheticConfig) (*model.Instance, error) {
	cfg = cfg.withDefaults()
	if cfg.NumEvents <= 0 || cfg.NumUsers <= 0 {
		return nil, fmt.Errorf("workload: non-positive instance dimensions")
	}
	if cfg.MinBids > cfg.MaxBids {
		return nil, fmt.Errorf("workload: MinBids %d > MaxBids %d", cfg.MinBids, cfg.MaxBids)
	}
	rng := xrand.New(cfg.Seed)

	conf := conflict.Random(cfg.NumEvents, cfg.PConflict, rng)
	groups := conf.Groups()

	g := social.ErdosRenyi(cfg.NumUsers, cfg.PFriend, rng)

	in := &model.Instance{
		Events:    make([]model.Event, cfg.NumEvents),
		Users:     make([]model.User, cfg.NumUsers),
		Conflicts: conf.Conflicts,
		Interest:  interest.Hashed(cfg.Seed ^ 0x5eed5eed),
		Beta:      cfg.Beta,
	}
	for v := range in.Events {
		in.Events[v].Capacity = rng.IntRange(1, cfg.MaxEventCap)
	}
	for u := range in.Users {
		in.Users[u].Capacity = rng.IntRange(1, cfg.MaxUserCap)
		in.Users[u].Degree = g.Degree(u)
		in.Users[u].Bids = sampleBids(rng, cfg, groups)
	}
	in.RebuildBidders()
	return in, nil
}

// sampleBids draws one user's bid set: mostly from one or two conflict
// groups (dependent bidding), the rest uniform.
func sampleBids(rng *xrand.RNG, cfg SyntheticConfig, groups [][]int) []int {
	want := rng.IntRange(cfg.MinBids, cfg.MaxBids)
	if want > cfg.NumEvents {
		want = cfg.NumEvents
	}
	// choose 1-2 home groups, size-weighted so popular groups attract bids
	home := make([][]int, 0, 2)
	nHome := 1 + rng.Intn(2)
	for i := 0; i < nHome; i++ {
		home = append(home, groups[weightedGroup(rng, groups)])
	}
	seen := make(map[int]bool, want)
	bids := make([]int, 0, want)
	guard := 0
	for len(bids) < want && guard < 50*want {
		guard++
		var v int
		if rng.Bool(cfg.GroupBias) {
			grp := home[rng.Intn(len(home))]
			v = grp[rng.Intn(len(grp))]
		} else {
			v = rng.Intn(cfg.NumEvents)
		}
		if !seen[v] {
			seen[v] = true
			bids = append(bids, v)
		}
	}
	sortInts(bids)
	return bids
}

// weightedGroup samples a group index proportional to group size.
func weightedGroup(rng *xrand.RNG, groups [][]int) int {
	total := 0
	for _, g := range groups {
		total += len(g)
	}
	t := rng.Intn(total)
	for i, g := range groups {
		t -= len(g)
		if t < 0 {
			return i
		}
	}
	return len(groups) - 1
}

func sortInts(s []int) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
