package server

import (
	"errors"
	"sync"
	"time"
)

// Errors push reports to the HTTP layer, which maps them onto status codes
// (429 with Retry-After for a full queue, 503 for a closing server).
var (
	errQueueFull   = errors.New("server: queue full")
	errQueueClosed = errors.New("server: queue closed")
)

// request is one queued bid submission awaiting its micro-batch. events,
// wait and decide are consumer-side scratch: the shard loop decides the
// whole batch first, commits the WAL, and only then replies — so each
// decision parks here between the engine call and its delivery.
type request struct {
	user     int
	enqueued time.Time
	reply    chan reply // buffered(1); nil for fire-and-forget submissions

	events []int
	wait   time.Duration
	decide time.Duration
}

// reply is the decision delivered back to a waiting submitter. shutdown
// marks the no-decision reply Close delivers to requests the consumers never
// reached — the HTTP layer answers 503 instead of an assignment.
type reply struct {
	events   []int
	epoch    int
	wait     time.Duration // time spent queued before processing began
	shutdown bool
}

// queue is the bounded arrival buffer feeding one micro-batching loop: FIFO
// push from any number of HTTP handlers, popBatch from exactly one consumer.
// It exists instead of a channel because the batching loop needs three
// things channels cannot give it: flush-on-deadline for a partial batch, an
// explicit drain signal, and a snapshot of the queued users (the lease
// renewer's demand predictor).
type queue struct {
	mu      sync.Mutex
	nonIdle *sync.Cond
	items   []request
	head    int
	limit   int
	closed  bool
	// drainPending asks the consumer to flush the current partial batch; it
	// is a flag, not a counter, so repeated drain calls cannot make future
	// full batches flush early.
	drainPending bool
	// busy is true from popBatch handing out a batch until the consumer's
	// finish() — it closes the window in which the queue looks empty while
	// decisions are still pending, which is what Drain keys on.
	busy bool
}

func newQueue(limit int) *queue {
	q := &queue{limit: limit}
	q.nonIdle = sync.NewCond(&q.mu)
	return q
}

// push appends a request; errQueueFull signals backpressure to the caller.
func (q *queue) push(r request) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return errQueueClosed
	}
	if len(q.items)-q.head >= q.limit {
		return errQueueFull
	}
	q.items = append(q.items, r)
	q.nonIdle.Broadcast()
	return nil
}

// popBatch blocks until it can hand the consumer a batch, then returns up to
// max requests in FIFO order (appended to dst[:0]).
//
//   - A full batch (≥ max pending) returns immediately.
//   - wait > 0 (live mode): a partial batch is returned once the oldest
//     pending request has waited `wait` — the micro-batching deadline T.
//   - wait == 0 (replay mode): a partial batch is returned only on an
//     explicit drain or on close — batch-by-count, no deadlines.
//
// Returns nil after the queue is closed and emptied.
func (q *queue) popBatch(max int, wait time.Duration, dst []request) []request {
	var timer *time.Timer
	defer func() {
		if timer != nil {
			timer.Stop()
		}
	}()
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		n := len(q.items) - q.head
		if n >= max {
			return q.pop(max, dst)
		}
		if q.closed {
			if n > 0 {
				return q.pop(n, dst)
			}
			return nil
		}
		if q.drainPending {
			q.drainPending = false
			if n > 0 {
				return q.pop(n, dst)
			}
			continue // drain of an empty queue: nothing to flush
		}
		if n > 0 && wait > 0 {
			deadline := q.items[q.head].enqueued.Add(wait)
			if !time.Now().Before(deadline) {
				return q.pop(n, dst)
			}
			if timer == nil {
				// The callback takes q.mu before broadcasting so the wakeup
				// cannot fire in the window between this deadline check and
				// the Wait below (sync.Cond keeps no memory of signals; an
				// unserialized Broadcast there would be lost and the partial
				// batch would miss its deadline).
				timer = time.AfterFunc(time.Until(deadline), func() {
					q.mu.Lock()
					q.nonIdle.Broadcast()
					q.mu.Unlock()
				})
			}
		}
		q.nonIdle.Wait()
	}
}

// pop removes the first n requests; the caller holds q.mu.
func (q *queue) pop(n int, dst []request) []request {
	dst = append(dst[:0], q.items[q.head:q.head+n]...)
	q.head += n
	q.busy = true
	if q.head == len(q.items) {
		q.items = q.items[:0]
		q.head = 0
	} else if q.head > 1024 && q.head*2 > len(q.items) {
		q.items = append(q.items[:0:0], q.items[q.head:]...)
		q.head = 0
	}
	return dst
}

// finish marks the last popped batch fully processed (replies delivered).
func (q *queue) finish() {
	q.mu.Lock()
	q.busy = false
	q.mu.Unlock()
}

// depth returns the number of queued requests.
func (q *queue) depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items) - q.head
}

// idle reports an empty queue with no batch in flight.
func (q *queue) idle() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items)-q.head == 0 && !q.busy
}

// pendingUsers appends the queued users to dst — the renewal demand snapshot.
func (q *queue) pendingUsers(dst []int) []int {
	q.mu.Lock()
	defer q.mu.Unlock()
	for _, r := range q.items[q.head:] {
		dst = append(dst, r.user)
	}
	return dst
}

// drain asks the consumer to flush the current partial batch.
func (q *queue) drain() {
	q.mu.Lock()
	q.drainPending = true
	q.nonIdle.Broadcast()
	q.mu.Unlock()
}

// takeAll removes and returns everything still queued — the shutdown
// backstop. Only meaningful after close() and after the consumer has exited:
// whatever is left is work no consumer will ever pop, and each waiting
// submitter must be released with a shutdown reply.
func (q *queue) takeAll() []request {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := append([]request(nil), q.items[q.head:]...)
	q.items = q.items[:0]
	q.head = 0
	return out
}

// close wakes the consumer to flush whatever is pending and exit.
func (q *queue) close() {
	q.mu.Lock()
	q.closed = true
	q.nonIdle.Broadcast()
	q.mu.Unlock()
}
