// Package wal is the durability subsystem of the serving stack: a
// write-ahead log of the logical serving operations (accepted bids, batch
// dispatches, lease renewals, cancellations, bid replacements) that, replayed
// in order against a fresh shard.Engine, reproduces the serving state
// bit-identically. The engine is a pure function of its operation stream —
// the determinism contract pinned since PR 2 — so logging the inputs is
// logging the state.
//
// # Frame format
//
// Each record is one length-prefixed, checksummed frame:
//
//	offset 0: uint32 LE  payload length n (n ≤ MaxRecord)
//	offset 4: uint32 LE  CRC32C (Castagnoli) of the payload
//	offset 8: n bytes    payload (the wal.Op JSON codec, see op.go)
//
// A crash can leave the file with a torn final frame (header or payload cut
// short) or, on misbehaving storage, a corrupt one (checksum mismatch).
// Recovery (Open, Scan) reads the longest valid prefix, reports how the tail
// failed, and truncates it — a bad tail is never silently replayed, and a
// record is never returned unless its CRC verified.
//
// # Fsync policy
//
// The Writer separates appending (buffered, cheap) from committing (flush,
// and fsync per policy): SyncAlways fsyncs on every Commit — an acked
// decision survives power loss; SyncInterval (the default) fsyncs on a
// background tick — bounded loss window, near-zero append overhead;
// SyncOff leaves persistence to the OS page cache. The serving layer commits
// once per micro-batch before delivering replies, so the policy is exactly
// the ack-durability trade-off.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"
)

const (
	headerSize = 8
	// MaxRecord bounds a single payload; a larger length prefix is treated
	// as corruption, which keeps a flipped length byte from allocating
	// gigabytes during recovery.
	MaxRecord = 1 << 26
)

// DefaultSyncInterval is the background fsync period under SyncInterval.
const DefaultSyncInterval = 50 * time.Millisecond

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Typed recovery errors. ErrTorn marks an incomplete frame at the tail (the
// normal crash signature, and what a follower sees racing the leader's
// buffered write); ErrCorrupt marks a frame whose bytes are all present but
// wrong (bad length or checksum).
var (
	ErrTorn    = errors.New("wal: torn record at tail")
	ErrCorrupt = errors.New("wal: corrupt record")
)

// SyncPolicy selects when appended records are fsynced.
type SyncPolicy int

const (
	// SyncInterval fsyncs on a background tick (Options.SyncInterval); a
	// crash loses at most one interval of acked decisions. The default.
	SyncInterval SyncPolicy = iota
	// SyncAlways fsyncs on every Commit: an acked decision is durable.
	SyncAlways
	// SyncOff never fsyncs (flush to the OS only): process crashes lose
	// nothing, power loss loses the page cache.
	SyncOff
)

// String implements fmt.Stringer.
func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncOff:
		return "off"
	default:
		return fmt.Sprintf("SyncPolicy(%d)", int(p))
	}
}

// ParseSyncPolicy parses the -wal-sync flag values.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "", "interval":
		return SyncInterval, nil
	case "off":
		return SyncOff, nil
	default:
		return 0, fmt.Errorf("wal: unknown sync policy %q (want always, interval or off)", s)
	}
}

// File is the subset of *os.File the writer needs. internal/faultfs wraps it
// to inject crashes, short writes and fsync failures underneath an otherwise
// unmodified Writer.
type File interface {
	io.Writer
	Sync() error
	Close() error
}

// Options parameterizes a Writer.
type Options struct {
	// Sync is the fsync policy (default SyncInterval).
	Sync SyncPolicy
	// SyncInterval is the background fsync period under SyncInterval
	// (0 = DefaultSyncInterval).
	SyncInterval time.Duration
	// ObserveSync, when non-nil, receives the wall-clock duration of every
	// fsync issued (including failed ones) — the serving layer's
	// fsync-latency histogram hook. Called with the writer's mutex held, so
	// it must be fast, must not block, and must not call back into the
	// Writer.
	ObserveSync func(time.Duration)
}

// WriterStats counts a writer's traffic.
type WriterStats struct {
	Appends int64 // records appended
	Bytes   int64 // frame bytes appended (header + payload)
	Syncs   int64 // fsync calls issued
}

// Writer appends framed records to a log file. It is safe for concurrent
// use; the first append, flush or fsync failure is sticky — durability can
// no longer be promised, so every later call reports it too.
type Writer struct {
	mu    sync.Mutex
	f     File
	buf   []byte // pending frame bytes not yet written to f
	off   int64  // logical end offset: start offset + all appended frames
	dirty bool   // bytes written to f since the last fsync
	err   error  // sticky failure
	opt   Options
	st    WriterStats

	stop chan struct{} // interval-sync goroutine lifecycle (nil unless running)
	done chan struct{}
}

// NewWriter wraps an open log file positioned at offset off (the end of the
// valid prefix — Open handles scanning and truncation). Under SyncInterval a
// background goroutine fsyncs every Options.SyncInterval until Close.
func NewWriter(f File, off int64, opt Options) *Writer {
	if opt.SyncInterval <= 0 {
		opt.SyncInterval = DefaultSyncInterval
	}
	w := &Writer{f: f, off: off, opt: opt}
	if opt.Sync == SyncInterval {
		w.stop = make(chan struct{})
		w.done = make(chan struct{})
		go w.syncLoop()
	}
	return w
}

func (w *Writer) syncLoop() {
	defer close(w.done)
	t := time.NewTicker(w.opt.SyncInterval)
	defer t.Stop()
	for {
		select {
		case <-w.stop:
			return
		case <-t.C:
			w.mu.Lock()
			if w.err == nil && (len(w.buf) > 0 || w.dirty) {
				w.syncLocked()
			}
			w.mu.Unlock()
		}
	}
}

// AppendFrame frames and buffers one payload, returning the log's logical
// end offset after the record. The record is not durable (and under
// SyncAlways not even flushed) until the next Commit.
func (w *Writer) AppendFrame(payload []byte) (int64, error) {
	if len(payload) > MaxRecord {
		return 0, fmt.Errorf("wal: record of %d bytes exceeds MaxRecord %d", len(payload), MaxRecord)
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.off, w.err
	}
	var hdr [headerSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, castagnoli))
	w.buf = append(w.buf, hdr[:]...)
	w.buf = append(w.buf, payload...)
	w.off += int64(headerSize + len(payload))
	w.st.Appends++
	w.st.Bytes += int64(headerSize + len(payload))
	return w.off, nil
}

// Append frames and buffers one operation (AppendFrame of its encoding).
func (w *Writer) Append(op Op) (int64, error) { return w.AppendFrame(op.Encode()) }

// Commit makes everything appended so far visible to readers of the file
// (flush), and durable under SyncAlways (fsync). The serving layer calls it
// once per micro-batch, after the decisions and before the replies.
func (w *Writer) Commit() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	if err := w.flushLocked(); err != nil {
		return err
	}
	if w.opt.Sync == SyncAlways {
		return w.fsyncLocked()
	}
	return nil
}

// Sync flushes and fsyncs regardless of policy — the full durability point
// checkpoints take before recording their WAL offset.
func (w *Writer) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	return w.syncLocked()
}

func (w *Writer) syncLocked() error {
	if err := w.flushLocked(); err != nil {
		return err
	}
	return w.fsyncLocked()
}

func (w *Writer) flushLocked() error {
	if len(w.buf) == 0 {
		return nil
	}
	n, err := w.f.Write(w.buf)
	if n > 0 {
		w.dirty = true
	}
	if err != nil {
		w.err = fmt.Errorf("wal: append: %w", err)
		return w.err
	}
	w.buf = w.buf[:0]
	return nil
}

func (w *Writer) fsyncLocked() error {
	if !w.dirty {
		return nil
	}
	w.st.Syncs++
	var t0 time.Time
	if w.opt.ObserveSync != nil {
		t0 = time.Now()
	}
	err := w.f.Sync()
	if w.opt.ObserveSync != nil {
		w.opt.ObserveSync(time.Since(t0))
	}
	if err != nil {
		w.err = fmt.Errorf("wal: fsync: %w", err)
		return w.err
	}
	w.dirty = false
	return nil
}

// Offset returns the logical end offset (start + every appended frame).
func (w *Writer) Offset() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.off
}

// Err returns the sticky failure, if any: once non-nil the log can no longer
// promise durability and the serving layer stops accepting writes.
func (w *Writer) Err() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err
}

// Stats returns the append/sync counters.
func (w *Writer) Stats() WriterStats {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.st
}

// Close stops the interval-sync goroutine, flushes, fsyncs and closes the
// file. It returns the sticky error, if any.
func (w *Writer) Close() error {
	if w.stop != nil {
		close(w.stop)
		<-w.done
		w.stop = nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	var err error
	if w.err == nil {
		err = w.syncLocked()
	} else {
		err = w.err
	}
	if cerr := w.f.Close(); cerr != nil && err == nil {
		err = cerr
	}
	return err
}

// --- reading ---------------------------------------------------------------

// readFrame decodes the frame starting at off. It returns io.EOF at a clean
// end, ErrTorn (wrapped, with the offset) on an incomplete frame and
// ErrCorrupt on a bad length or checksum.
func readFrame(r io.ReaderAt, off int64) (payload []byte, end int64, err error) {
	var hdr [headerSize]byte
	n, err := r.ReadAt(hdr[:], off)
	if n == 0 && err == io.EOF {
		return nil, off, io.EOF
	}
	if n < headerSize {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return nil, off, fmt.Errorf("wal: offset %d: header cut to %d bytes: %w", off, n, ErrTorn)
		}
		return nil, off, fmt.Errorf("wal: offset %d: reading header: %w", off, err)
	}
	length := binary.LittleEndian.Uint32(hdr[0:4])
	if length > MaxRecord {
		return nil, off, fmt.Errorf("wal: offset %d: length %d exceeds MaxRecord: %w", off, length, ErrCorrupt)
	}
	payload = make([]byte, length)
	n, err = r.ReadAt(payload, off+headerSize)
	if n < int(length) {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return nil, off, fmt.Errorf("wal: offset %d: payload cut to %d of %d bytes: %w", off, n, length, ErrTorn)
		}
		return nil, off, fmt.Errorf("wal: offset %d: reading payload: %w", off, err)
	}
	if got, want := crc32.Checksum(payload, castagnoli), binary.LittleEndian.Uint32(hdr[4:8]); got != want {
		return nil, off, fmt.Errorf("wal: offset %d: CRC32C %08x, frame says %08x: %w", off, got, want, ErrCorrupt)
	}
	return payload, off + headerSize + int64(length), nil
}

// Scan reads every valid record from offset 0 and reports where the valid
// prefix ends. tailErr is nil for a clean end, or wraps ErrTorn/ErrCorrupt —
// the bytes past validSize must be discarded, never replayed.
func Scan(r io.ReaderAt) (payloads [][]byte, validSize int64, tailErr error) {
	off := int64(0)
	for {
		p, end, err := readFrame(r, off)
		if err == io.EOF {
			return payloads, off, nil
		}
		if err != nil {
			return payloads, off, err
		}
		payloads = append(payloads, p)
		off = end
	}
}

// RecoverInfo reports what Open found in an existing log.
type RecoverInfo struct {
	// Records is the number of valid records replayed.
	Records int
	// ValidSize is the file size after tail truncation.
	ValidSize int64
	// Dropped is the number of torn/corrupt tail bytes truncated.
	Dropped int64
	// TailErr describes the dropped tail (nil when the log ended cleanly);
	// it wraps ErrTorn or ErrCorrupt.
	TailErr error
}

// Open opens (creating if absent) the log for appending: it replays every
// valid record from startOffset through apply, truncates any torn or corrupt
// tail at the last valid frame, and returns a Writer positioned at the end.
// startOffset is the checkpoint's WAL offset (0 for a cold boot); an offset
// past the end of the file means the checkpoint and log disagree, which is
// an error, not a truncation.
//
// If apply returns an error, recovery aborts and the file is left untouched.
func Open(path string, startOffset int64, opt Options, apply func(payload []byte) error) (*Writer, RecoverInfo, error) {
	var info RecoverInfo
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, info, err
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, info, err
	}
	size := fi.Size()
	if startOffset < 0 || startOffset > size {
		f.Close()
		return nil, info, fmt.Errorf("wal: checkpoint offset %d outside log of %d bytes", startOffset, size)
	}
	off := startOffset
	for {
		payload, end, rerr := readFrame(f, off)
		if rerr == io.EOF {
			break
		}
		if rerr != nil {
			info.TailErr = rerr
			break
		}
		if apply != nil {
			if aerr := apply(payload); aerr != nil {
				f.Close()
				return nil, info, fmt.Errorf("wal: replaying record %d at offset %d: %w", info.Records, off, aerr)
			}
		}
		info.Records++
		off = end
	}
	info.ValidSize = off
	info.Dropped = size - off
	if info.Dropped > 0 {
		if err := f.Truncate(off); err != nil {
			f.Close()
			return nil, info, fmt.Errorf("wal: truncating bad tail: %w", err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, info, err
		}
	}
	if _, err := f.Seek(off, io.SeekStart); err != nil {
		f.Close()
		return nil, info, err
	}
	return NewWriter(f, off, opt), info, nil
}

// --- tailing ---------------------------------------------------------------

// Tailer reads a log another process is appending to — the follower's view.
// Next never truncates: an incomplete tail may simply be the leader's write
// in flight, so the tailer reports ErrTorn and the caller retries after the
// file grows.
type Tailer struct {
	f   *os.File
	off int64
}

// OpenTailer opens the log read-only, positioned at off.
func OpenTailer(path string, off int64) (*Tailer, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	return &Tailer{f: f, off: off}, nil
}

// Next returns the next complete record. io.EOF means a clean end (for now);
// an error wrapping ErrTorn means an incomplete tail — both are retry-later
// signals for a live leader. An error wrapping ErrCorrupt is permanent.
func (t *Tailer) Next() ([]byte, error) {
	payload, end, err := readFrame(t.f, t.off)
	if err != nil {
		return nil, err
	}
	t.off = end
	return payload, nil
}

// Offset returns the offset of the next unread record.
func (t *Tailer) Offset() int64 { return t.off }

// Size returns the log's current size.
func (t *Tailer) Size() (int64, error) {
	fi, err := t.f.Stat()
	if err != nil {
		return 0, err
	}
	return fi.Size(), nil
}

// Close closes the underlying file.
func (t *Tailer) Close() error { return t.f.Close() }

// --- atomic file replacement ----------------------------------------------

// WriteFileAtomic replaces path with data atomically: write to a temp file
// in the same directory, fsync it, rename over the target, fsync the
// directory. A crash at any point leaves either the old complete file or the
// new complete file — never a partial checkpoint.
func WriteFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	cleanup := func() {
		tmp.Close()
		os.Remove(tmpName)
	}
	if _, err := tmp.Write(data); err != nil {
		cleanup()
		return err
	}
	if err := tmp.Sync(); err != nil {
		cleanup()
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return err
	}
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}
