package server

import (
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"sync"
	"time"

	"github.com/ebsn/igepa/internal/shard"
	"github.com/ebsn/igepa/internal/wal"
)

// This file is the cluster-shard half of the wire renewal protocol (see
// DESIGN.md §10). A shard process (cmd/igepa-shardd) exposes /cluster/*
// endpoints to its router:
//
//	POST /cluster/demand  — phase 1 (prepare): freeze grants, report loads
//	                        and queued demand
//	POST /cluster/lease   — phase 2 (install): install the coordinator's
//	                        budget vector, thaw
//	POST /cluster/abort   — explicit thaw without install
//	POST /cluster/batch   — replay-mode dispatch of one ordered sub-batch
//	POST /cluster/export  — migration: hand a user range off this shard
//	POST /cluster/adopt   — migration: take a user range onto this shard
//
// The freeze between demand and lease is what makes the two-phase renewal
// sound: the shard's loads must not move between the coordinator reading
// them and the new budgets landing, or a grant in that window could exceed
// the incoming lease. Freezing means holding every serving lock across the
// two HTTP calls; a watchdog thaws the shard after Config.FreezeTimeout so a
// dead router cannot wedge it (the late install then gets a 409 and the
// router degrades rather than double-booking).

// leaseGate is the freeze window's state machine. busy covers the whole
// prepare→install/abort/expiry span (a second prepare is refused, not
// deadlocked behind held serving locks); frozen marks the serving locks as
// held on the coordinator's behalf.
type leaseGate struct {
	mu     sync.Mutex
	busy   bool
	frozen bool
	gen    uint64
	timer  *time.Timer
}

func (srv *Server) freezeTimeout() time.Duration {
	if srv.cfg.FreezeTimeout > 0 {
		return srv.cfg.FreezeTimeout
	}
	return DefaultFreezeTimeout
}

// freezeLeases acquires every serving lock on behalf of the coordinator and
// arms the expiry watchdog. Returns false when a freeze is already active.
func (srv *Server) freezeLeases() (uint64, bool) {
	g := &srv.gate
	g.mu.Lock()
	if g.busy {
		g.mu.Unlock()
		return 0, false
	}
	g.busy = true
	g.mu.Unlock()

	srv.lockAll()
	g.mu.Lock()
	g.frozen = true
	g.gen++
	gen := g.gen
	g.timer = time.AfterFunc(srv.freezeTimeout(), func() {
		if srv.thawFreeze(gen) {
			log.Printf("server: wire-renewal freeze expired after %v; thawed (router dead or slow)", srv.freezeTimeout())
		}
	})
	g.mu.Unlock()
	return gen, true
}

// thawFreeze releases freeze generation gen (no-op when a newer freeze or an
// install already released it). Reports whether this call released the locks.
func (srv *Server) thawFreeze(gen uint64) bool {
	g := &srv.gate
	g.mu.Lock()
	if !g.frozen || g.gen != gen {
		g.mu.Unlock()
		return false
	}
	g.release()
	g.mu.Unlock()
	srv.unlockAll()
	return true
}

// abortFreeze releases whatever freeze is active (Close's path: a frozen
// gate would stall the consumers' final batches).
func (srv *Server) abortFreeze() bool {
	g := &srv.gate
	g.mu.Lock()
	if !g.frozen {
		g.mu.Unlock()
		return false
	}
	g.release()
	g.mu.Unlock()
	srv.unlockAll()
	return true
}

// release resets the gate; the caller holds g.mu and still owns unlockAll.
func (g *leaseGate) release() {
	g.frozen = false
	g.busy = false
	if g.timer != nil {
		g.timer.Stop()
		g.timer = nil
	}
}

// --- wire types (shared with internal/router) ------------------------------

// ClusterDemandResponse is the prepare phase's report: this shard's per-event
// granted seats and the users queued behind the freeze (the renewal demand
// predictor), plus the renewal counter for coordinator/shard sync checks.
type ClusterDemandResponse struct {
	Loads    []int `json:"loads"`
	Queued   []int `json:"queued"`
	Renewals int   `json:"renewals"`
}

// ClusterLeaseRequest carries the coordinator-computed absolute budget
// vector to install.
type ClusterLeaseRequest struct {
	Budget []int `json:"budget"`
}

// ClusterLeaseResponse reports the install: seats gained versus the old free
// headroom (the MovedSeats currency) and the shard's new renewal count.
type ClusterLeaseResponse struct {
	Moved    int `json:"moved"`
	Renewals int `json:"renewals"`
}

// ClusterBatchRequest is one ordered replay sub-batch for this shard.
type ClusterBatchRequest struct {
	Users []int `json:"users"`
}

// ClusterBatchResponse returns the decisions in request order.
type ClusterBatchResponse struct {
	Decisions [][]int `json:"decisions"`
	Epoch     int     `json:"epoch"`
}

// ClusterExportRequest names the users to hand off this shard.
type ClusterExportRequest struct {
	Users []int `json:"users"`
}

// ClusterMigration is the export response and the adopt request: the shard
// package's Migration payload plus the serving-layer lifecycle states, so
// the adopting shard reproduces the users exactly (decided-empty versus
// never-arrived matters for duplicate detection).
type ClusterMigration struct {
	Users  []int   `json:"users"`
	Sets   [][]int `json:"sets"`
	States []uint8 `json:"states"`
}

// --- handlers ---------------------------------------------------------------

// handleClusterDemand is POST /cluster/demand — phase 1 of the wire renewal.
func (srv *Server) handleClusterDemand(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	if !srv.writable(w) {
		return
	}
	_, ok := srv.freezeLeases()
	if !ok {
		httpError(w, http.StatusConflict, "a lease renewal is already in progress")
		return
	}
	var pending []int
	for _, q := range srv.queues {
		pending = q.pendingUsers(pending)
	}
	if pending == nil {
		pending = []int{}
	}
	writeJSON(w, http.StatusOK, ClusterDemandResponse{
		Loads:    srv.eng.LoadVector(),
		Queued:   pending,
		Renewals: srv.eng.Renewals(),
	})
}

// handleClusterLease is POST /cluster/lease — phase 2: install the budget
// computed by the coordinator and thaw. Holding gate.mu across the install
// excludes the expiry watchdog, so the serving locks are provably still held
// while the engine is touched.
func (srv *Server) handleClusterLease(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req ClusterLeaseRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad JSON: "+err.Error())
		return
	}
	g := &srv.gate
	g.mu.Lock()
	if !g.frozen {
		g.mu.Unlock()
		httpError(w, http.StatusConflict, "no lease renewal in progress (freeze expired?)")
		return
	}
	moved, err := srv.eng.InstallLease(req.Budget)
	if err == nil && srv.walWriter() != nil {
		srv.walAppend(wal.Op{Kind: wal.OpLease, TMillis: nowMillis(), Budget: req.Budget})
		srv.walCommit()
	}
	renewals := srv.eng.Renewals()
	g.release()
	g.mu.Unlock()
	srv.unlockAll()
	if err != nil {
		httpError(w, http.StatusConflict, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, ClusterLeaseResponse{Moved: moved, Renewals: renewals})
}

// handleClusterAbort is POST /cluster/abort — thaw without installing.
func (srv *Server) handleClusterAbort(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	released := srv.abortFreeze()
	writeJSON(w, http.StatusOK, struct {
		Released bool `json:"released"`
	}{Released: released})
}

// handleClusterBatch is POST /cluster/batch — the router's replay-mode
// dispatch of one ordered sub-batch onto this shard, mirroring what
// Engine.DispatchBatch would feed this shard's planner in a single process.
func (srv *Server) handleClusterBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	if !srv.writable(w) {
		return
	}
	var req ClusterBatchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad JSON: "+err.Error())
		return
	}
	for _, u := range req.Users {
		if u < 0 || u >= srv.in.NumUsers() {
			srv.m.badRequests.Add(1)
			httpError(w, http.StatusBadRequest, fmt.Sprintf("user %d outside [0,%d)", u, srv.in.NumUsers()))
			return
		}
		if !srv.eng.Owns(u) {
			srv.m.misrouted.Add(1)
			httpError(w, http.StatusMisdirectedRequest, fmt.Sprintf("user %d is not owned by this shard", u))
			return
		}
	}
	// Refuse double dispatch loudly: a router retrying a batch that in fact
	// landed must not replay arrivals (it would corrupt the bit-identical
	// decision stream), and queued users belong to the live path.
	srv.stateMu.Lock()
	for _, u := range req.Users {
		if st := srv.state[u]; st == stateDecided || st == stateQueued {
			srv.stateMu.Unlock()
			srv.m.conflicts.Add(1)
			httpError(w, http.StatusConflict, fmt.Sprintf("user %d already %s", u,
				map[uint8]string{stateQueued: "queued", stateDecided: "decided"}[st]))
			return
		}
	}
	srv.stateMu.Unlock()

	srv.lockAll()
	t0 := time.Now()
	srv.eng.DispatchBatch(req.Users)
	elapsed := time.Since(t0)
	if srv.walWriter() != nil {
		srv.walAppend(wal.Op{Kind: wal.OpBatch, TMillis: nowMillis(), Users: req.Users})
		srv.walCommit()
	}
	epoch := srv.eng.Epochs()
	decisions := make([][]int, len(req.Users))
	for i, u := range req.Users {
		decisions[i] = srv.eng.Assignment(srv.eng.ShardOf(u), u)
		if decisions[i] == nil {
			decisions[i] = []int{}
		}
	}
	srv.unlockAll()

	srv.stateMu.Lock()
	for _, u := range req.Users {
		srv.state[u] = stateDecided
	}
	srv.stateMu.Unlock()
	n := int64(len(req.Users))
	srv.m.arrivals.Add(n)
	srv.m.decided.Add(n)
	for _, set := range decisions {
		if len(set) > 0 {
			srv.m.granted.Add(1)
		}
	}
	if n > 0 {
		srv.m.decide.add(elapsed / time.Duration(n))
	}
	srv.batches.Add(1)
	writeJSON(w, http.StatusOK, ClusterBatchResponse{Decisions: decisions, Epoch: epoch})
}

// handleClusterExport is POST /cluster/export — hand a user range off this
// shard. The router drains this shard first; queued users are refused.
func (srv *Server) handleClusterExport(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	if !srv.writable(w) {
		return
	}
	var req ClusterExportRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad JSON: "+err.Error())
		return
	}
	srv.stateMu.Lock()
	for _, u := range req.Users {
		if u >= 0 && u < srv.in.NumUsers() && srv.state[u] == stateQueued {
			srv.stateMu.Unlock()
			srv.m.conflicts.Add(1)
			httpError(w, http.StatusConflict, fmt.Sprintf("user %d still queued; drain before export", u))
			return
		}
	}
	srv.stateMu.Unlock()

	srv.lockAll()
	m, err := srv.eng.ExportUsers(req.Users)
	if err != nil {
		srv.unlockAll()
		httpError(w, http.StatusConflict, err.Error())
		return
	}
	resp := ClusterMigration{Users: m.Users, Sets: m.Sets, States: make([]uint8, len(m.Users))}
	srv.stateMu.Lock()
	for i, u := range m.Users {
		resp.States[i] = srv.state[u]
		srv.state[u] = stateNone
	}
	srv.stateMu.Unlock()
	if srv.walWriter() != nil {
		srv.walAppend(wal.Op{Kind: wal.OpExport, TMillis: nowMillis(), Users: m.Users})
		srv.walCommit()
	}
	srv.unlockAll()
	writeJSON(w, http.StatusOK, resp)
}

// handleClusterAdopt is POST /cluster/adopt — take a migrated user range
// onto this shard: decisions, consumed seats, and lifecycle states.
func (srv *Server) handleClusterAdopt(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	if !srv.writable(w) {
		return
	}
	var req ClusterMigration
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad JSON: "+err.Error())
		return
	}
	if len(req.Sets) != len(req.Users) || (req.States != nil && len(req.States) != len(req.Users)) {
		httpError(w, http.StatusBadRequest, fmt.Sprintf(
			"migration with %d users, %d sets, %d states", len(req.Users), len(req.Sets), len(req.States)))
		return
	}
	srv.lockAll()
	if err := srv.eng.AdoptUsers(&shard.Migration{Users: req.Users, Sets: req.Sets}); err != nil {
		srv.unlockAll()
		httpError(w, http.StatusConflict, err.Error())
		return
	}
	srv.stateMu.Lock()
	for i, u := range req.Users {
		if req.States != nil {
			srv.state[u] = req.States[i]
		} else if len(req.Sets[i]) > 0 {
			srv.state[u] = stateDecided
		}
	}
	srv.stateMu.Unlock()
	if srv.walWriter() != nil {
		srv.walAppend(wal.Op{Kind: wal.OpAdopt, TMillis: nowMillis(),
			Users: req.Users, Sets: req.Sets, States: req.States})
		srv.walCommit()
	}
	srv.unlockAll()
	writeJSON(w, http.StatusOK, struct {
		Adopted int `json:"adopted"`
	}{Adopted: len(req.Users)})
}
