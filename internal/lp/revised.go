package lp

import (
	"fmt"
	"io"

	"github.com/ebsn/igepa/internal/par"
)

// Revised is a revised primal simplex solver. The basis inverse is never
// formed: the basis is kept as a sparse LU factorization (lu.go) plus a
// product-form eta file of the pivots since the last refactorization, so
// each iteration costs a few sparse triangular solve pairs plus pricing.
// This is the production path for paper-scale benchmark LPs, where the dense
// tableau would be prohibitively large.
//
// Pricing is Devex (Forrest–Goldfarb reference weights) with incrementally
// updated reduced costs by default. The benchmark LP at large |U| is a
// heavily degenerate transportation-like program on which textbook Dantzig
// pricing zigzags — measured on the |U|=4000 Table I workload, Dantzig took
// ~96k pivots with 55k re-entries of previously basic columns; Devex cuts
// both dramatically. Dantzig with a partial pricing window remains available
// and is auto-selected for very wide problems, where the per-pivot O(n)
// Devex update pass costs more than it saves.
//
// The Devex update and pricing passes — the dominant cost at paper scale —
// run on a bounded worker pool over column ranges. Every column's update is
// arithmetically independent, so the solve is bit-identical for every
// worker count and GOMAXPROCS setting.
type Revised struct {
	// MaxIter bounds the number of pivots; 0 means 20000 + 200·(m+n).
	MaxIter int
	// RefactorEvery rebuilds the LU factorization after this many pivots
	// (discarding accumulated round-off); 0 means 128.
	RefactorEvery int
	// Pricing selects the pricing rule: "devex", "dantzig", or ""/"auto"
	// (Devex up to DevexColumnLimit columns, Dantzig beyond).
	Pricing string
	// PricingWindow is the number of columns scanned per iteration under
	// partial Dantzig pricing before falling back to a full pass.
	// 0 means 4096.
	PricingWindow int
	// Workers bounds the pricing worker pool; 0 means GOMAXPROCS. Results
	// do not depend on it.
	Workers int
	// ParallelThreshold overrides the variable count (n+m) at which the
	// Devex passes move onto the worker pool; 0 means the package default
	// (devexParallelThreshold). Tests lower it to force the pooled code
	// paths on small LPs.
	ParallelThreshold int
	// Trace, when non-nil, receives a progress line every TraceEvery
	// pivots (objective, step size, degenerate share) — the diagnostic
	// used to tune pricing on pathological instances.
	Trace io.Writer
	// TraceEvery sets the trace granularity; 0 means 5000.
	TraceEvery int
	// NoPerturb disables the default anti-degeneracy RHS perturbation.
	//
	// The benchmark LP is massively degenerate (thousands of identical
	// user rows with b=1). The solver perturbs each b_i > 0 by a
	// deterministic pseudo-random δ_i ∈ (0.5, 1]·1e-6·(1+b_i) before
	// solving, so ties in the ratio test break consistently and degenerate
	// vertices are left in real steps. Zero rows are never perturbed (a
	// zero capacity must stay hard). The returned solution is feasible for
	// the perturbed problem, hence feasible for the original within 1e-6
	// relative per row; Verify's tolerances absorb it.
	NoPerturb bool
}

// DevexColumnLimit is the problem width beyond which auto pricing falls back
// from Devex to partial Dantzig: the Devex update pass touches every
// nonbasic column once per pivot, which dominates on very wide LPs (e.g.
// the Meetup workload's ~10⁶ columns) that Dantzig already solves in few
// iterations.
const DevexColumnLimit = 300_000

// DevexRowThreshold is the row count above which auto pricing prefers Devex
// over partial Dantzig (see the auto-selection comment in Solve).
const DevexRowThreshold = 3000

// devexParallelThreshold is the variable count (n+m) below which the Devex
// passes stay on the calling goroutine: under it the per-pivot work is too
// small to amortize handing chunks to the pool.
const devexParallelThreshold = 16384

// devexGrain is the minimum column-range chunk handed to a pricing worker.
const devexGrain = 4096

// perturbScale is the relative magnitude of the anti-degeneracy
// perturbation.
const perturbScale = 2e-7

// perturbDelta returns the deterministic perturbation for row i.
func perturbDelta(i int, b float64) float64 {
	z := uint64(i)*0x9e3779b97f4a7c15 + 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	u := 0.5 + 0.5*float64(z>>11)/(1<<53) // (0.5, 1]
	return perturbScale * (1 + b) * u
}

// eta is one product-form update: the pivot that replaced basic position r,
// described by the FTRAN'd entering column d. Its off-diagonal entries live
// in the state's shared eta arena at [lo, hi); the diagonal element dr is
// stored separately. Keeping the entries in one growable arena (reset at
// each refactorization) instead of per-eta slices removes two heap
// allocations per pivot.
type eta struct {
	r      int
	lo, hi int32
	dr     float64
}

// Solve runs the revised primal simplex on p from the all-slack basis.
func (s *Revised) Solve(p *Problem) (*Solution, error) {
	if err := p.Check(); err != nil {
		return nil, err
	}
	m, n := p.NumRows, p.NumCols()
	if m == 0 {
		// No constraints: x = 0 is optimal unless some c_j > 0.
		for _, c := range p.C {
			if c > reducedTol {
				return &Solution{Status: Unbounded}, ErrUnbounded
			}
		}
		return &Solution{Status: Optimal, X: make([]float64, n), Y: nil, Objective: 0}, nil
	}
	maxIter := s.MaxIter
	if maxIter <= 0 {
		maxIter = 20000 + 200*(m+n)
	}
	refactorEvery := s.RefactorEvery
	if refactorEvery <= 0 {
		refactorEvery = 128
	}
	window := s.PricingWindow
	if window <= 0 {
		window = 4096
	}
	devex := false
	switch s.Pricing {
	case "devex":
		devex = true
	case "dantzig":
	case "", "auto":
		// Measured on the Table I workloads (see DESIGN.md): Dantzig wins
		// below ~3000 rows (|U|=2000 defaults: 0.9s vs 2.5s) because the
		// per-pivot Devex pass over all columns outweighs its iteration
		// savings; beyond that the degenerate churn explodes under Dantzig
		// (|U|=4000: 96k pivots vs 19k) and Devex wins several-fold. On
		// very wide problems (Meetup: ~8·10⁵ columns) the O(n) update pass
		// dominates everything, so Dantzig with a pricing window is used.
		devex = m > DevexRowThreshold && n+m <= DevexColumnLimit
	default:
		return nil, fmt.Errorf("lp: unknown pricing rule %q", s.Pricing)
	}

	st := newRevisedState(p, m, n, !s.NoPerturb)
	st.workers = par.Workers(s.Workers)
	parallelThreshold := s.ParallelThreshold
	if parallelThreshold <= 0 {
		parallelThreshold = devexParallelThreshold
	}
	if st.workers > 1 && n+m < parallelThreshold {
		st.workers = 1
	}
	if err := st.refactorize(); err != nil {
		return nil, err
	}
	if devex {
		st.initDevex()
	}

	iters := 0
	degenerate := 0
	tinySteps := 0
	bland := false
	cursor := 0
	for ; iters < maxIter; iters++ {
		var q int
		switch {
		case bland:
			st.btran()
			q = st.priceBland()
		case devex:
			q = st.priceDevex()
			if q < 0 {
				// Apparent optimality on incrementally updated reduced
				// costs: refresh exactly and re-check before declaring.
				st.refreshReducedCosts()
				q = st.priceDevex()
			}
		default:
			st.btran()
			q, cursor = st.pricePartial(cursor, window)
		}
		if q < 0 {
			st.btran()
			return st.extract(iters), nil
		}

		st.ftran(q) // d = B⁻¹ a_q

		// Ratio test.
		r := -1
		var theta float64
		for i := 0; i < m; i++ {
			a := st.d[i]
			if a <= pivotTol {
				continue
			}
			ratio := st.xB[i] / a
			switch {
			case r < 0 || ratio < theta-pivotTol:
				r, theta = i, ratio
			case ratio <= theta+pivotTol:
				if bland {
					if st.basis[i] < st.basis[r] {
						r, theta = i, ratio
					}
				} else if a > st.d[r] {
					r, theta = i, ratio
				}
			}
		}
		if r < 0 {
			return &Solution{Status: Unbounded, Iterations: iters}, ErrUnbounded
		}
		if theta <= pivotTol {
			degenerate++
			if degenerate >= stallLimit {
				bland = true
			}
		} else {
			degenerate = 0
			bland = false
		}
		if s.Trace != nil {
			every := s.TraceEvery
			if every <= 0 {
				every = 5000
			}
			if theta < 1e-6 {
				tinySteps++
			}
			if iters%every == 0 {
				obj := 0.0
				for i := range st.xB {
					obj += st.cB[i] * st.xB[i]
				}
				fmt.Fprintf(s.Trace, "iter=%d obj=%.4f theta=%.3g tiny%%=%.1f bland=%v etas=%d\n",
					iters, obj, theta, 100*float64(tinySteps)/float64(iters+1), bland, len(st.etas))
			}
		}

		if devex {
			st.updateDevex(q, r)
		}

		// Apply the pivot.
		for i := 0; i < m; i++ {
			if v := st.d[i]; v != 0 {
				st.xB[i] -= theta * v
				if st.xB[i] < 0 && st.xB[i] > -1e-11 {
					st.xB[i] = 0
				}
			}
		}
		st.xB[r] = theta
		leaving := st.basis[r]
		st.posOf[leaving] = -1
		st.basis[r] = q
		st.posOf[q] = r
		st.cB[r] = st.objCoef(q)
		st.pushEta(r)

		if len(st.etas) >= refactorEvery {
			if err := st.refactorize(); err != nil {
				return nil, err
			}
			if devex {
				st.refreshReducedCosts()
			}
		}
	}
	return &Solution{Status: IterLimit, Iterations: iters}, ErrIterLimit
}

// revisedState carries the mutable solver state; it exists so the pivot
// loop above reads top-down without a dozen captured locals.
type revisedState struct {
	p       *Problem
	m, n    int
	workers int
	b       []float64 // right-hand side, possibly perturbed

	basis []int     // basis position -> variable index
	posOf []int     // variable index -> basis position or -1
	xB    []float64 // values of basic variables
	cB    []float64 // objective coefficients of basic variables

	lu        *luFactors
	basisCols []spCol // views of the current basis columns (refactorize)

	etas   []eta
	etaIdx []int32 // shared eta arena (see eta)
	etaVal []float64

	y    []float64 // dual prices, original-row space
	d    []float64 // FTRAN result, basis-position space
	beta []float64 // BTRAN of the leaving unit vector (Devex pivot row)
	work []float64 // scratch for LU solves

	// Devex state: incrementally maintained reduced costs and reference
	// weights for every variable (structural and slack).
	rvec    []float64
	weights []float64
	scratch []float64 // second zeroed work vector (btranUnit)

	// chunk-argmax scratch for the parallel pricing pass
	chunkBest  []int
	chunkScore []float64

	rowSeq []int32   // rowSeq[i] = i: slack column indices and full-rhs rows
	ones   []float64 // all ones: slack column values
}

func newRevisedState(p *Problem, m, n int, perturb bool) *revisedState {
	st := &revisedState{
		p: p, m: m, n: n,
		workers: 1,
		b:       append([]float64(nil), p.B...),
		basis:   make([]int, m),
		posOf:   make([]int, n+m),
		xB:      make([]float64, m),
		cB:      make([]float64, m),
		y:       make([]float64, m),
		d:       make([]float64, m),
		work:    make([]float64, m),
		lu:      &luFactors{},
		rowSeq:  make([]int32, m),
		ones:    make([]float64, m),
	}
	if perturb {
		for i := range st.b {
			if st.b[i] > 0 {
				st.b[i] += perturbDelta(i, st.b[i])
			}
		}
	}
	for i := 0; i < m; i++ {
		st.rowSeq[i] = int32(i)
		st.ones[i] = 1
	}
	for i := range st.posOf {
		st.posOf[i] = -1
	}
	for i := 0; i < m; i++ {
		st.basis[i] = n + i
		st.posOf[n+i] = i
		st.xB[i] = st.b[i]
	}
	return st
}

func (st *revisedState) objCoef(v int) float64 {
	if v < st.n {
		return st.p.C[v]
	}
	return 0
}

// columnOf returns the sparse constraint column of variable v as views —
// into the problem's CSC arrays for a structural column, into the state's
// slack storage for a unit slack column. Never a copy.
func (st *revisedState) columnOf(v int) ([]int32, []float64) {
	if v < st.n {
		return st.p.Col(v)
	}
	i := v - st.n
	return st.rowSeq[i : i+1], st.ones[i : i+1]
}

// refactorize rebuilds the LU factorization of the current basis, clears the
// eta file, and recomputes x_B = B⁻¹b to shed accumulated round-off.
func (st *revisedState) refactorize() error {
	if st.basisCols == nil {
		st.basisCols = make([]spCol, st.m)
	}
	for i, v := range st.basis {
		rows, vals := st.columnOf(v)
		st.basisCols[i] = spCol{rows: rows, vals: vals}
	}
	if err := st.lu.factorize(st.m, st.basisCols); err != nil {
		return err
	}
	st.etas = st.etas[:0]
	st.etaIdx = st.etaIdx[:0]
	st.etaVal = st.etaVal[:0]
	st.lu.solveB(st.rowSeq, st.b, st.xB, st.work)
	for i := range st.xB {
		if st.xB[i] < 0 && st.xB[i] > -1e-9 {
			st.xB[i] = 0
		}
		st.cB[i] = st.objCoef(st.basis[i])
	}
	return nil
}

// ftran computes d = B⁻¹ a_q into st.d.
func (st *revisedState) ftran(q int) {
	rows, vals := st.columnOf(q)
	st.lu.solveB(rows, vals, st.d, st.work)
	for _, e := range st.etas {
		xr := st.d[e.r] / e.dr
		st.d[e.r] = xr
		if xr != 0 {
			idx := st.etaIdx[e.lo:e.hi]
			val := st.etaVal[e.lo:e.hi]
			for i, s := range idx {
				st.d[s] -= val[i] * xr
			}
		}
	}
}

// btran computes y = B⁻ᵀ c_B into st.y.
func (st *revisedState) btran() {
	z := st.d // reuse as scratch; overwritten by the next ftran
	copy(z, st.cB)
	st.applyEtasT(z)
	st.lu.solveBT(z, st.y, st.work)
}

// btranUnit computes β = B⁻ᵀ e_r (row r of the basis inverse) into st.beta.
func (st *revisedState) btranUnit(r int) {
	if st.beta == nil {
		st.beta = make([]float64, st.m)
	}
	z := st.work2()
	z[r] = 1
	st.applyEtasT(z)
	st.lu.solveBT(z, st.beta, st.work)
	for i := range z {
		z[i] = 0
	}
}

// work2 returns a second zeroed scratch vector of length m.
func (st *revisedState) work2() []float64 {
	if st.scratch == nil {
		st.scratch = make([]float64, st.m)
	}
	return st.scratch
}

// applyEtasT applies the transposed eta file in reverse order (the BTRAN
// half of the product-form update).
func (st *revisedState) applyEtasT(z []float64) {
	for k := len(st.etas) - 1; k >= 0; k-- {
		e := &st.etas[k]
		idx := st.etaIdx[e.lo:e.hi]
		val := st.etaVal[e.lo:e.hi]
		sum := 0.0
		for i, s := range idx {
			sum += val[i] * z[s]
		}
		z[e.r] = (z[e.r] - sum) / e.dr
	}
}

// pushEta records the current FTRAN vector st.d as the eta for a pivot at
// basic position r, appending its entries to the shared arena.
func (st *revisedState) pushEta(r int) {
	lo := int32(len(st.etaIdx))
	for i, v := range st.d {
		if i != r && (v > 1e-13 || v < -1e-13) {
			st.etaIdx = append(st.etaIdx, int32(i))
			st.etaVal = append(st.etaVal, v)
		}
	}
	st.etas = append(st.etas, eta{r: r, lo: lo, hi: int32(len(st.etaIdx)), dr: st.d[r]})
}

// reducedCost returns c_q − yᵀ a_q for variable q under the current duals.
func (st *revisedState) reducedCost(q int) float64 {
	if q < st.n {
		red := st.p.C[q]
		lo, hi := st.p.ColPtr[q], st.p.ColPtr[q+1]
		for k := lo; k < hi; k++ {
			red -= st.y[st.p.Rows[k]] * st.p.Vals[k]
		}
		return red
	}
	return -st.y[q-st.n]
}

// --- Devex pricing -------------------------------------------------------

// initDevex allocates and fills the Devex state: exact reduced costs for
// every variable and unit reference weights.
func (st *revisedState) initDevex() {
	st.rvec = make([]float64, st.n+st.m)
	st.weights = make([]float64, st.n+st.m)
	st.refreshReducedCosts()
}

// refreshReducedCosts recomputes st.rvec exactly from the current duals.
// The Devex reference weights are reset only when they have grown extreme
// (a fresh reference framework); resetting them on every refactorization
// would degrade Devex to Dantzig.
func (st *revisedState) refreshReducedCosts() {
	st.btran()
	maxW := 0.0
	for _, w := range st.weights {
		if w > maxW {
			maxW = w
		}
	}
	reset := maxW > 1e8 || maxW == 0
	par.Ranges(st.workers, st.n+st.m, devexGrain, func(lo, hi int) {
		for j := lo; j < hi; j++ {
			if st.posOf[j] >= 0 {
				st.rvec[j] = 0
			} else {
				st.rvec[j] = st.reducedCost(j)
			}
			if reset {
				st.weights[j] = 1
			}
		}
	})
}

// priceDevex selects the entering variable maximizing r²/weight over
// variables with positive reduced cost, per the stored (incrementally
// updated) reduced costs. The scan is chunked over the worker pool; the
// chunk results combine to exactly the sequential first-strict-maximum, so
// the selected column does not depend on the worker count.
func (st *revisedState) priceDevex() int {
	total := st.n + st.m
	// Solve already forces workers to 1 below the parallel threshold.
	if st.workers <= 1 {
		best := -1
		bestScore := 0.0
		for j, r := range st.rvec {
			if r <= reducedTol {
				continue
			}
			if score := r * r / st.weights[j]; score > bestScore {
				best, bestScore = j, score
			}
		}
		return best
	}
	nChunks := st.workers * 4
	chunk := (total + nChunks - 1) / nChunks
	if chunk < devexGrain {
		chunk = devexGrain
		nChunks = (total + chunk - 1) / chunk
	}
	if cap(st.chunkBest) < nChunks {
		st.chunkBest = make([]int, nChunks)
		st.chunkScore = make([]float64, nChunks)
	}
	chunkBest := st.chunkBest[:nChunks]
	chunkScore := st.chunkScore[:nChunks]
	par.For(st.workers, nChunks, 1, func(c int) {
		lo, hi := c*chunk, (c+1)*chunk
		if hi > total {
			hi = total
		}
		best := -1
		bestScore := 0.0
		for j := lo; j < hi; j++ {
			r := st.rvec[j]
			if r <= reducedTol {
				continue
			}
			if score := r * r / st.weights[j]; score > bestScore {
				best, bestScore = j, score
			}
		}
		chunkBest[c], chunkScore[c] = best, bestScore
	})
	best := -1
	bestScore := 0.0
	for c := 0; c < nChunks; c++ {
		if chunkBest[c] >= 0 && chunkScore[c] > bestScore {
			best, bestScore = chunkBest[c], chunkScore[c]
		}
	}
	return best
}

// updateDevex performs the Forrest–Goldfarb update after choosing entering
// variable q and leaving basic position r: it computes the pivot row
// α = (B⁻¹)ᵣA, folds it into the stored reduced costs, and grows the
// reference weights. Must be called before the basis is modified. The
// per-column pass — the dominant per-pivot cost at paper scale — is chunked
// over the worker pool; each column's arithmetic is self-contained, so the
// result is identical for every worker count.
func (st *revisedState) updateDevex(q, r int) {
	st.btranUnit(r)
	alphaQ := st.d[r] // pivot element
	if alphaQ == 0 {
		return // cannot happen for a legal pivot; guard anyway
	}
	rq := st.rvec[q]
	ratio := rq / alphaQ
	wq := st.weights[q]
	wLeave := wq / (alphaQ * alphaQ)
	if wLeave < 1 {
		wLeave = 1
	}
	beta := st.beta
	invAlphaQ := 1 / alphaQ
	colPtr, rowIdx, vals := st.p.ColPtr, st.p.Rows, st.p.Vals
	par.Ranges(st.workers, st.n+st.m, devexGrain, func(lo, hi int) {
		for j := lo; j < hi; j++ {
			if st.posOf[j] >= 0 || j == q {
				continue
			}
			var alpha float64
			if j < st.n {
				for k := colPtr[j]; k < colPtr[j+1]; k++ {
					alpha += beta[rowIdx[k]] * vals[k]
				}
			} else {
				// slack: α_j is just the β entry of the slack's row
				alpha = beta[j-st.n]
			}
			if alpha == 0 {
				continue
			}
			st.rvec[j] -= ratio * alpha
			t := alpha * invAlphaQ
			if w := t * t * wq; w > st.weights[j] {
				st.weights[j] = w
			}
		}
	})
	// entering becomes basic; leaving picks up the textbook post-pivot
	// reduced cost and weight.
	st.rvec[q] = 0
	st.weights[q] = 1
	leaving := st.basis[r]
	st.rvec[leaving] = -ratio
	st.weights[leaving] = wLeave
}

// --- Dantzig pricing ------------------------------------------------------

// pricePartial scans a window of variables starting at cursor and returns
// the best improving one; if the window has none it widens to a full pass,
// which also certifies optimality (return -1).
func (st *revisedState) pricePartial(cursor, window int) (q, next int) {
	total := st.n + st.m
	best, bestRed := -1, reducedTol
	scanned := 0
	i := cursor
	for scanned < total {
		if st.posOf[i] < 0 {
			if red := st.reducedCost(i); red > bestRed {
				best, bestRed = i, red
			}
		}
		scanned++
		i++
		if i == total {
			i = 0
		}
		if scanned >= window && best >= 0 {
			return best, i
		}
	}
	return best, i
}

// priceBland returns the lowest-index variable with positive reduced cost
// (used during anti-cycling episodes).
func (st *revisedState) priceBland() int {
	for q := 0; q < st.n+st.m; q++ {
		if st.posOf[q] >= 0 {
			continue
		}
		if st.reducedCost(q) > reducedTol {
			return q
		}
	}
	return -1
}

// extract assembles the optimal solution from the final basis.
func (st *revisedState) extract(iters int) *Solution {
	x := make([]float64, st.n)
	for i, v := range st.basis {
		if v < st.n {
			val := st.xB[i]
			if val < 0 && val > -1e-9 {
				val = 0
			}
			x[v] = val
		}
	}
	obj := 0.0
	for j, c := range st.p.C {
		obj += c * x[j]
	}
	y := make([]float64, st.m)
	copy(y, st.y)
	for i := range y {
		if y[i] < 0 && y[i] > -1e-9 {
			y[i] = 0
		}
	}
	return &Solution{Status: Optimal, X: x, Y: y, Objective: obj, Iterations: iters}
}
