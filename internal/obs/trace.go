package obs

// The per-arrival trace is deliberately minimal: the serving loops already
// measure their span boundaries (queue wait, batch dispatch, planner
// decide, WAL commit, reply) for /statsz, so the trace layer adds no new
// clock reads on the fast path — only a threshold compare. Every arrival
// whose end-to-end latency crosses the -slowlog threshold is emitted as one
// structured key=value line; everything below it costs one branch and zero
// allocations (the caller builds the span list only after Slow says yes).

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Span is one named segment of an arrival's lifetime.
type Span struct {
	Name string
	D    time.Duration
}

// SlowLog emits one structured line per arrival slower than Threshold.
// A nil *SlowLog is a valid, disabled logger: Slow reports false and Note
// is a no-op, so call sites need no configuration branches.
type SlowLog struct {
	threshold time.Duration
	mu        sync.Mutex
	out       io.Writer
	slow      atomic.Int64
}

// NewSlowLog returns a logger for arrivals slower than threshold, writing
// to out. A non-positive threshold (or nil out) disables it: nil is
// returned and every method degrades to a no-op.
func NewSlowLog(threshold time.Duration, out io.Writer) *SlowLog {
	if threshold <= 0 || out == nil {
		return nil
	}
	return &SlowLog{threshold: threshold, out: out}
}

// Slow reports whether total crosses the threshold. Callers must gate span
// construction on it — the fast path stays allocation-free because the
// []Span literal is only built when Slow returns true.
func (l *SlowLog) Slow(total time.Duration) bool {
	return l != nil && total >= l.threshold
}

// Count returns how many slow arrivals have been logged.
func (l *SlowLog) Count() int64 {
	if l == nil {
		return 0
	}
	return l.slow.Load()
}

// Note formats and writes one slow-arrival line:
//
//	slowlog op=bid user=17 shard=3 total=12.4ms wait=9.1ms decide=2.2ms ...
//
// Spans with zero duration are still printed — an operator reading a slow
// line wants to see which spans were NOT the problem.
func (l *SlowLog) Note(op string, user, shard int, total time.Duration, spans []Span) {
	if l == nil {
		return
	}
	l.slow.Add(1)
	var b strings.Builder
	fmt.Fprintf(&b, "slowlog op=%s user=%d shard=%d total=%s", op, user, shard, total)
	for _, s := range spans {
		fmt.Fprintf(&b, " %s=%s", s.Name, s.D)
	}
	b.WriteByte('\n')
	l.mu.Lock()
	io.WriteString(l.out, b.String())
	l.mu.Unlock()
}
