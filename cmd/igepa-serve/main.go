// Command igepa-serve replays an online arrival stream through the sharded
// serving layer (internal/shard) and reports how utility and throughput
// behave as the shard count grows — the serving-side counterpart of
// igepa-bench's offline sweeps.
//
// Usage:
//
//	igepa-serve                          # Meetup-like stream, S ∈ {1,2,4,8}
//	igepa-serve -shards 1,2,4,8,16 -batch 64
//	igepa-serve -workload synthetic -users 2000 -events 100
//	igepa-serve -planner threshold -tau 0.5 -guard 0.25
//
// Every row is deterministic given -seed: the same stream, partition and
// lease schedule reproduce bit-identical arrangements on every run and
// every GOMAXPROCS.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"github.com/ebsn/igepa"
	"github.com/ebsn/igepa/internal/shard"
	"github.com/ebsn/igepa/internal/xrand"
)

type config struct {
	workload string
	events   int
	users    int
	seed     int64
	shards   []int
	batch    int
	planner  string
	tau      float64
	guard    float64
	workers  int
	lpBound  bool
}

func main() {
	var cfg config
	var shardList string
	flag.StringVar(&cfg.workload, "workload", "meetup", "arrival workload: meetup or synthetic")
	flag.IntVar(&cfg.events, "events", 80, "number of events (0 = workload default)")
	flag.IntVar(&cfg.users, "users", 600, "number of users / arrivals (0 = workload default)")
	flag.Int64Var(&cfg.seed, "seed", 1, "seed for instance, arrival order and shard partition")
	flag.StringVar(&shardList, "shards", "1,2,4,8", "comma-separated shard counts to sweep")
	flag.IntVar(&cfg.batch, "batch", 0, "arrivals between lease renewals (0 = default)")
	flag.StringVar(&cfg.planner, "planner", "greedy", "per-shard policy: greedy or threshold")
	flag.Float64Var(&cfg.tau, "tau", 0.5, "threshold planner: admission weight")
	flag.Float64Var(&cfg.guard, "guard", 0.25, "threshold planner: reserved capacity fraction")
	flag.IntVar(&cfg.workers, "workers", 0, "worker-pool bound (0 = all cores; results identical)")
	flag.BoolVar(&cfg.lpBound, "lp", true, "also solve the offline LP bound for comparison")
	flag.Parse()

	var err error
	cfg.shards, err = parseShards(shardList)
	if err == nil {
		err = run(os.Stdout, cfg)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "igepa-serve:", err)
		os.Exit(1)
	}
}

func parseShards(list string) ([]int, error) {
	var out []int
	for _, tok := range strings.Split(list, ",") {
		s, err := strconv.Atoi(strings.TrimSpace(tok))
		if err != nil || s < 1 {
			return nil, fmt.Errorf("bad shard count %q", tok)
		}
		out = append(out, s)
	}
	return out, nil
}

func run(w *os.File, cfg config) error {
	in, err := makeInstance(cfg)
	if err != nil {
		return err
	}
	kind, err := plannerKind(cfg.planner)
	if err != nil {
		return err
	}
	order := xrand.New(cfg.seed).Perm(in.NumUsers())

	bound := 0.0
	if cfg.lpBound {
		res, err := igepa.LPPacking(in, igepa.LPPackingOptions{Seed: cfg.seed, Workers: cfg.workers})
		if err != nil {
			return fmt.Errorf("offline LP bound: %w", err)
		}
		bound = res.LPObjective
	}

	fmt.Fprintf(w, "workload=%s |V|=%d |U|=%d planner=%s seed=%d\n",
		cfg.workload, in.NumEvents(), in.NumUsers(), kind, cfg.seed)
	if cfg.lpBound {
		fmt.Fprintf(w, "offline LP bound: %.4f\n", bound)
	}
	fmt.Fprintf(w, "%8s %12s %10s %10s %8s %8s %10s %12s\n",
		"shards", "utility", "vs-single", "vs-bound", "pairs", "moved", "elapsed", "arrivals/s")

	optFor := func(s int) shard.Options {
		return shard.Options{
			Shards: s, Batch: cfg.batch, Workers: cfg.workers, Seed: cfg.seed,
			Planner: kind, Tau: cfg.tau, Guard: cfg.guard,
		}
	}
	// The vs-single baseline is always a real S=1 run, whatever -shards says.
	base, err := shard.Serve(in, order, optFor(1))
	if err != nil {
		return err
	}
	single := base.Utility
	for _, s := range cfg.shards {
		start := time.Now()
		res, err := shard.Serve(in, order, optFor(s))
		if err != nil {
			return err
		}
		elapsed := time.Since(start)
		if err := igepa.Validate(in, res.Arrangement); err != nil {
			return fmt.Errorf("S=%d produced infeasible arrangement: %w", s, err)
		}
		vsSingle, vsBound := "-", "-"
		if single > 0 {
			vsSingle = fmt.Sprintf("%.1f%%", 100*res.Utility/single)
		}
		if bound > 0 {
			vsBound = fmt.Sprintf("%.1f%%", 100*res.Utility/bound)
		}
		rate := float64(len(order)) / elapsed.Seconds()
		fmt.Fprintf(w, "%8d %12.4f %10s %10s %8d %8d %10s %12.0f\n",
			s, res.Utility, vsSingle, vsBound,
			res.Arrangement.Size(), res.MovedSeats,
			elapsed.Round(time.Millisecond), rate)
	}
	return nil
}

func makeInstance(cfg config) (*igepa.Instance, error) {
	switch cfg.workload {
	case "meetup":
		return igepa.Meetup(igepa.MeetupConfig{
			Seed: cfg.seed, NumEvents: cfg.events, NumUsers: cfg.users,
		})
	case "synthetic":
		return igepa.Synthetic(igepa.SyntheticConfig{
			Seed: cfg.seed, NumEvents: cfg.events, NumUsers: cfg.users,
		})
	default:
		return nil, fmt.Errorf("unknown workload %q (want meetup or synthetic)", cfg.workload)
	}
}

func plannerKind(name string) (shard.PlannerKind, error) {
	switch name {
	case "greedy":
		return shard.PlannerGreedy, nil
	case "threshold":
		return shard.PlannerThreshold, nil
	default:
		return 0, fmt.Errorf("unknown planner %q (want greedy or threshold)", name)
	}
}
