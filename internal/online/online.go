// Package online implements an online variant of IGEPA as a reproduction
// extension: users arrive one at a time (the order models registration
// streams on a live EBSN platform) and the platform must irrevocably decide
// the arriving user's events before seeing later users. The paper studies
// the offline problem and cites the online GEACC line of work (She et al.,
// TKDE 2016) as the neighbouring setting; this package provides the natural
// online counterparts of the offline baselines so the cost of onlineness
// can be measured against the offline LP bound.
//
// Two policies are provided:
//
//   - Greedy: assign the arriving user their maximum-weight admissible set
//     that fits the remaining capacities.
//   - Threshold: like Greedy, but while an event still has more than a
//     guard fraction of its capacity free, only pairs with weight ≥ tau are
//     accepted — the classic reservation rule that keeps early low-value
//     arrivals from exhausting capacity that later high-value arrivals
//     would use.
package online

import (
	"fmt"

	"github.com/ebsn/igepa/internal/admissible"
	"github.com/ebsn/igepa/internal/conflict"
	"github.com/ebsn/igepa/internal/model"
)

// BudgetError is the typed error returned by the budget-owning constructors
// when the caller-supplied capacity budget cannot be a valid lease: wrong
// length, negative entries, or more seats than the event physically has
// (an over-committed lease). It replaces the out-of-range panics a malformed
// budget used to cause deep inside Arrive.
type BudgetError struct {
	// Event is the offending event index, or -1 for structural problems.
	Event  int
	Reason string
}

func (e *BudgetError) Error() string {
	if e.Event >= 0 {
		return fmt.Sprintf("online: invalid budget for event %d: %s", e.Event, e.Reason)
	}
	return "online: invalid budget: " + e.Reason
}

// checkBudget validates a caller-owned budget against the instance.
func checkBudget(in *model.Instance, conf *conflict.Matrix, budget []int) error {
	if in == nil {
		return &BudgetError{Event: -1, Reason: "nil instance"}
	}
	if conf == nil {
		return &BudgetError{Event: -1, Reason: "nil conflict matrix"}
	}
	if conf.Len() != in.NumEvents() {
		return &BudgetError{Event: -1, Reason: fmt.Sprintf(
			"conflict matrix covers %d events, instance has %d", conf.Len(), in.NumEvents())}
	}
	if len(budget) != in.NumEvents() {
		return &BudgetError{Event: -1, Reason: fmt.Sprintf(
			"budget covers %d events, instance has %d", len(budget), in.NumEvents())}
	}
	for v, b := range budget {
		if b < 0 {
			return &BudgetError{Event: v, Reason: fmt.Sprintf("negative lease %d", b)}
		}
		if b > in.Events[v].Capacity {
			return &BudgetError{Event: v, Reason: fmt.Sprintf(
				"lease %d exceeds capacity %d", b, in.Events[v].Capacity)}
		}
	}
	return nil
}

// Planner assigns events to users as they arrive. Implementations are
// stateful: each Arrive consumes capacity permanently.
type Planner interface {
	// Arrive returns the events granted to user u (sorted ascending).
	// It must be called at most once per user.
	Arrive(u int) []int
}

// Run processes the arrival order through the planner and returns the
// resulting arrangement. Users absent from order receive no events. It
// returns an error if order contains an out-of-range or duplicate user.
func Run(in *model.Instance, order []int, p Planner) (*model.Arrangement, error) {
	arr := model.NewArrangement(in.NumUsers())
	seen := make([]bool, in.NumUsers())
	for _, u := range order {
		if u < 0 || u >= in.NumUsers() {
			return nil, fmt.Errorf("online: arrival of unknown user %d", u)
		}
		if seen[u] {
			return nil, fmt.Errorf("online: user %d arrived twice", u)
		}
		seen[u] = true
		arr.Sets[u] = p.Arrive(u)
	}
	arr.Normalize()
	return arr, nil
}

// GreedyPlanner grants each arrival its best admissible set that fits the
// remaining event capacities.
//
// The planner draws seats from a capacity budget rather than from the
// instance's raw Capacity fields. NewGreedy gives the planner a private
// budget equal to the event capacities (the classic single-planner setting);
// NewGreedyBudget aliases a caller-owned budget slice, which is how the
// sharded serving layer (internal/shard) grants each shard a lease on a
// slice of every event's capacity and renews it between batches.
type GreedyPlanner struct {
	in      *model.Instance
	conf    *conflict.Matrix
	budget  []int // seats this planner may grant per event (may be caller-owned)
	load    []int // seats this planner has granted per event
	maxSets int
	cache   *admissible.Cache // optional enumeration cache (SetCache)
}

// NewGreedy returns a greedy online planner whose budget is the instance's
// event capacities. maxSets caps the per-user admissible-set enumeration
// (0 = package default).
func NewGreedy(in *model.Instance, maxSets int) *GreedyPlanner {
	budget := make([]int, in.NumEvents())
	for v := range budget {
		budget[v] = in.Events[v].Capacity
	}
	p, err := NewGreedyBudget(in, budget, maxSets)
	if err != nil {
		// the budget is the capacity table itself; it cannot be invalid
		panic(err)
	}
	return p
}

// NewGreedyBudget returns a greedy online planner that grants at most
// budget[v] seats of event v. The slice is aliased, not copied: the caller
// may raise (or, down to the current load, lower) entries between Arrive
// calls to renew a capacity lease, and the planner observes the new values
// on the next arrival. Mutating the budget concurrently with Arrive is a
// data race; the sharded serving layer only writes it at batch boundaries.
// It returns a *BudgetError when the budget cannot be a valid lease.
func NewGreedyBudget(in *model.Instance, budget []int, maxSets int) (*GreedyPlanner, error) {
	if in == nil {
		return nil, &BudgetError{Event: -1, Reason: "nil instance"}
	}
	return NewGreedyBudgetShared(in, conflict.FromFunc(in.NumEvents(), in.Conflicts), budget, maxSets)
}

// NewGreedyBudgetShared is NewGreedyBudget with a caller-provided conflict
// matrix, shared read-only: a serving layer constructing one planner per
// shard over the same instance materializes the O(|V|²) matrix once instead
// of once per shard.
func NewGreedyBudgetShared(in *model.Instance, conf *conflict.Matrix, budget []int, maxSets int) (*GreedyPlanner, error) {
	if err := checkBudget(in, conf, budget); err != nil {
		return nil, err
	}
	return &GreedyPlanner{
		in:      in,
		conf:    conf,
		budget:  budget,
		load:    make([]int, in.NumEvents()),
		maxSets: maxSets,
	}, nil
}

// SetCache attaches an admissible-set enumeration cache to the planner's hot
// path (nil detaches). The cache is consulted per arrival with the user's
// currently open bids and capacity; complete enumerations are stored for
// reuse by later arrivals with the same (open set, capacity) key. The caller
// owns the cache's single-goroutine discipline: a cache must not be shared
// by planners that run concurrently.
func (p *GreedyPlanner) SetCache(c *admissible.Cache) { p.cache = c }

// Loads returns the per-event seat counts this planner has granted so far.
// The slice is the planner's internal state: callers must not modify it and
// must not read it concurrently with Arrive.
func (p *GreedyPlanner) Loads() []int { return p.load }

// Arrive implements Planner.
func (p *GreedyPlanner) Arrive(u int) []int {
	best := p.bestFeasibleSet(u, func(int) bool { return true })
	for _, v := range best {
		p.load[v]++
	}
	return best
}

// Release returns previously granted seats to the planner: the serving
// layer's cancellation path. The freed seats reappear in this planner's
// budget headroom (budget − load) and are grantable on the next arrival.
func (p *GreedyPlanner) Release(events []int) {
	for _, v := range events {
		if v >= 0 && v < len(p.load) && p.load[v] > 0 {
			p.load[v]--
		}
	}
}

// bestFeasibleSet returns the maximum-weight admissible set of user u whose
// events all pass accept and have remaining budget.
func (p *GreedyPlanner) bestFeasibleSet(u int, accept func(v int) bool) []int {
	usr := &p.in.Users[u]
	var open []int
	for _, v := range usr.Bids {
		if p.load[v] < p.budget[v] && accept(v) {
			open = append(open, v)
		}
	}
	if len(open) == 0 {
		return nil
	}
	wc := p.in.Weights()
	if p.cache != nil {
		return p.bestCached(u, usr.Capacity, open, wc)
	}
	w := func(v int) float64 { return wc.Of(u, v) }
	r := admissible.Enumerate(open, usr.Capacity, p.conf, w, admissible.Config{MaxSetsPerUser: p.maxSets})
	bestW := 0.0
	var best []int
	for _, s := range r.Sets {
		if s.Weight > bestW {
			bestW = s.Weight
			best = s.Events
		}
	}
	return append([]int(nil), best...)
}

// bestCached is the cache-backed variant of the selection: fetch or
// enumerate the admissible family for (open, cap), then score it under this
// user's weights. The family is structural — which subsets of open are
// conflict-free and small enough — so one user's enumeration serves every
// later arrival with the same open bids and capacity, whatever their
// weights. Truncated enumerations are never cached (the retained subset
// depends on the enumerating user's weight order).
func (p *GreedyPlanner) bestCached(u, cap int, open []int, wc *model.WeightCache) []int {
	fam, ok := p.cache.Lookup(open, cap)
	if !ok {
		w := func(v int) float64 { return wc.Of(u, v) }
		r := admissible.Enumerate(open, cap, p.conf, w, admissible.Config{MaxSetsPerUser: p.maxSets})
		fam = make([][]int, len(r.Sets))
		for i := range r.Sets {
			fam[i] = r.Sets[i].Events
		}
		if !r.Truncated {
			p.cache.Insert(open, cap, fam)
		}
	}
	bestW := 0.0
	var best []int
	for _, s := range fam {
		w := 0.0
		for _, v := range s {
			w += wc.Of(u, v)
		}
		if w > bestW {
			bestW = w
			best = s
		}
	}
	return append([]int(nil), best...)
}

// ThresholdPlanner is GreedyPlanner plus a reservation rule: the last
// Guard·budget(v) seats of every event are reserved for pairs with
// w(u,v) ≥ Tau; lighter pairs are admitted only into the first
// (1−Guard)·budget(v) seats. With the default budget (NewThreshold) the
// budget is cv, the paper-setting reservation rule; under a capacity lease
// the guard protects the same fraction of the leased slice.
type ThresholdPlanner struct {
	GreedyPlanner
	// Tau is the admission threshold on pair weight.
	Tau float64
	// Guard is the reserved capacity fraction in [0,1]. Guard=0 disables
	// the rule (pure greedy); Guard=1 admits only pairs ≥ Tau.
	Guard float64
}

// NewThreshold returns a threshold online planner whose budget is the
// instance's event capacities.
func NewThreshold(in *model.Instance, tau, guard float64, maxSets int) *ThresholdPlanner {
	budget := make([]int, in.NumEvents())
	for v := range budget {
		budget[v] = in.Events[v].Capacity
	}
	p, err := NewThresholdBudget(in, budget, tau, guard, maxSets)
	if err != nil {
		// the budget is the capacity table itself; it cannot be invalid
		panic(err)
	}
	return p
}

// NewThresholdBudget returns a threshold online planner over a caller-owned
// capacity budget (see NewGreedyBudget for the aliasing contract). It
// returns a *BudgetError when the budget cannot be a valid lease.
func NewThresholdBudget(in *model.Instance, budget []int, tau, guard float64, maxSets int) (*ThresholdPlanner, error) {
	if in == nil {
		return nil, &BudgetError{Event: -1, Reason: "nil instance"}
	}
	return NewThresholdBudgetShared(in, conflict.FromFunc(in.NumEvents(), in.Conflicts), budget, tau, guard, maxSets)
}

// NewThresholdBudgetShared is NewThresholdBudget with a caller-provided
// conflict matrix (see NewGreedyBudgetShared).
func NewThresholdBudgetShared(in *model.Instance, conf *conflict.Matrix, budget []int, tau, guard float64, maxSets int) (*ThresholdPlanner, error) {
	if guard < 0 {
		guard = 0
	}
	if guard > 1 {
		guard = 1
	}
	g, err := NewGreedyBudgetShared(in, conf, budget, maxSets)
	if err != nil {
		return nil, err
	}
	return &ThresholdPlanner{
		GreedyPlanner: *g,
		Tau:           tau,
		Guard:         guard,
	}, nil
}

// Arrive implements Planner.
func (p *ThresholdPlanner) Arrive(u int) []int {
	wc := p.in.Weights()
	best := p.bestFeasibleSet(u, func(v int) bool {
		if wc.Of(u, v) >= p.Tau {
			return true // heavy pairs may use any seat
		}
		openSeats := (1 - p.Guard) * float64(p.budget[v])
		return float64(p.load[v]) < openSeats
	})
	for _, v := range best {
		p.load[v]++
	}
	return best
}
