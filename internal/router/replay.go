package router

import (
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"github.com/ebsn/igepa/internal/server"
)

// Replay mode: the router owns the global batch schedule that a single-
// process replay server runs in its replayLoop. Arrivals queue centrally,
// flush strictly every B in arrival order, and before every batch but the
// first the router runs a wire renewal fed with that batch's users — then
// partitions the batch by owner (preserving arrival order within each part)
// and drives each backend's /cluster/batch. Because each backend's engine
// sees exactly the sub-batch, budgets, and order that its shard would see
// inside one S-shard engine, the cluster's decisions are bit-identical to
// ServeSharded on the same arrival order.

// rreq is one queued replay submission; rrep its decision.
type rreq struct {
	user  int
	reply chan rrep // buffered(1); nil for wait:false submissions
}

type rrep struct {
	events   []int
	epoch    int
	failed   bool // dispatch failed (router degraded); submitter gets 503
	shutdown bool // router closed before deciding
}

// rqueue is the bounded global arrival buffer: FIFO push from the handlers,
// popBatch from the single dispatcher. Strictly batch-by-count — partial
// batches flush only on drain or close, like the server's replay queue.
type rqueue struct {
	mu           sync.Mutex
	nonIdle      *sync.Cond
	items        []rreq
	head         int
	limit        int
	closed       bool
	drainPending bool
	busy         bool
}

func newRQueue(limit int) *rqueue {
	q := &rqueue{limit: limit}
	q.nonIdle = sync.NewCond(&q.mu)
	return q
}

func (q *rqueue) push(r rreq) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return errClosed
	}
	if len(q.items)-q.head >= q.limit {
		return errFull
	}
	q.items = append(q.items, r)
	q.nonIdle.Broadcast()
	return nil
}

// popBatch blocks until a full batch of max is pending (or a drain/close
// flushes a partial one); returns nil once closed and emptied.
func (q *rqueue) popBatch(max int, dst []rreq) []rreq {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		n := len(q.items) - q.head
		if n >= max {
			return q.pop(max, dst)
		}
		if q.closed {
			if n > 0 {
				return q.pop(n, dst)
			}
			return nil
		}
		if q.drainPending {
			q.drainPending = false
			if n > 0 {
				return q.pop(n, dst)
			}
			continue
		}
		q.nonIdle.Wait()
	}
}

func (q *rqueue) pop(n int, dst []rreq) []rreq {
	dst = append(dst[:0], q.items[q.head:q.head+n]...)
	q.head += n
	q.busy = true
	if q.head == len(q.items) {
		q.items = q.items[:0]
		q.head = 0
	}
	return dst
}

func (q *rqueue) finish() {
	q.mu.Lock()
	q.busy = false
	q.mu.Unlock()
}

func (q *rqueue) depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items) - q.head
}

func (q *rqueue) idle() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items)-q.head == 0 && !q.busy
}

func (q *rqueue) drain() {
	q.mu.Lock()
	q.drainPending = true
	q.nonIdle.Broadcast()
	q.mu.Unlock()
}

// takeAll empties the queue after the dispatcher has exited — the shutdown
// backstop that releases every still-parked submitter.
func (q *rqueue) takeAll() []rreq {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := append([]rreq(nil), q.items[q.head:]...)
	q.items = q.items[:0]
	q.head = 0
	return out
}

func (q *rqueue) close() {
	q.mu.Lock()
	q.closed = true
	q.nonIdle.Broadcast()
	q.mu.Unlock()
}

var (
	errFull   = fmt.Errorf("router: queue full")
	errClosed = fmt.Errorf("router: queue closed")
)

// replayBid is handleBid's replay-mode tail: duplicate-check against the
// router's lifecycle view, enqueue, park until the batch decides.
func (rt *Router) replayBid(w http.ResponseWriter, req *bidRequest) {
	if req.Bids != nil {
		// A replacement bid set would have to reach the owner's weight table
		// before the decision — a wire step the replay dispatcher does not
		// have. Refuse loudly rather than decide on stale weights.
		httpError(w, http.StatusNotImplemented, "bid replacement is not supported through the router in replay mode")
		return
	}
	rt.stateMu.Lock()
	st := rt.state[req.User]
	if st == stateQueued || st == stateDecided {
		rt.stateMu.Unlock()
		rt.m.conflicts.Add(1)
		httpError(w, http.StatusConflict, fmt.Sprintf("user %d already %s", req.User,
			map[uint8]string{stateQueued: "queued", stateDecided: "decided"}[st]))
		return
	}
	rt.state[req.User] = stateQueued
	rt.stateMu.Unlock()

	wait := req.Wait == nil || *req.Wait
	rq := rreq{user: req.User}
	if wait {
		rq.reply = make(chan rrep, 1)
	}
	if err := rt.q.push(rq); err != nil {
		rt.stateMu.Lock()
		if rt.state[req.User] == stateQueued {
			rt.state[req.User] = st
		}
		rt.stateMu.Unlock()
		if err == errClosed {
			httpError(w, http.StatusServiceUnavailable, "router closing")
			return
		}
		rt.m.rejected.Add(1)
		w.Header().Set("Retry-After", strconv.Itoa(int((rt.cfg.RetryAfter+time.Second-1)/time.Second)))
		httpError(w, http.StatusTooManyRequests, "queue full")
		return
	}
	rt.m.arrivals.Add(1)
	if !wait {
		writeJSON(w, http.StatusAccepted, bidResponse{User: req.User, Queued: true})
		return
	}
	rep := <-rq.reply
	switch {
	case rep.shutdown:
		httpError(w, http.StatusServiceUnavailable, "router closed before deciding")
	case rep.failed:
		httpError(w, http.StatusServiceUnavailable, "router degraded: "+rt.degradedReason())
	default:
		writeJSON(w, http.StatusOK, bidResponse{User: req.User, Events: rep.events, Epoch: rep.epoch})
	}
}

// dispatchLoop is the replay dispatcher: one goroutine popping strict
// B-batches and driving the cluster through renewal + partitioned dispatch.
func (rt *Router) dispatchLoop() {
	defer rt.wg.Done()
	buf := make([]rreq, 0, rt.b)
	users := make([]int, 0, rt.b)
	for {
		batch := rt.q.popBatch(rt.b, buf)
		if batch == nil {
			return
		}
		buf = batch
		users = users[:0]
		for i := range batch {
			users = append(users, batch[i].user)
		}
		decisions, epoch, err := rt.dispatchBatch(users)
		if err != nil {
			rt.degrade("batch dispatch failed: " + err.Error())
			rt.stateMu.Lock()
			for _, u := range users {
				if rt.state[u] == stateQueued {
					rt.state[u] = stateNone
				}
			}
			rt.stateMu.Unlock()
			for i := range batch {
				if batch[i].reply != nil {
					batch[i].reply <- rrep{failed: true}
				}
			}
			rt.q.finish()
			continue
		}
		rt.m.epochs.Add(1)
		rt.stateMu.Lock()
		for _, u := range users {
			rt.state[u] = stateDecided
		}
		rt.stateMu.Unlock()
		for i := range batch {
			rt.m.decided.Add(1)
			if len(decisions[i]) > 0 {
				rt.m.granted.Add(1)
			}
			if batch[i].reply != nil {
				batch[i].reply <- rrep{events: decisions[i], epoch: epoch}
			}
		}
		rt.q.finish()
	}
}

// dispatchBatch runs one replay batch end to end: renewal (after the first
// batch — the schedule shard.Serve keeps), owner partition preserving
// arrival order, parallel /cluster/batch, decision reassembly in arrival
// order. Any failure is terminal for bit-identity, so errors degrade.
func (rt *Router) dispatchBatch(users []int) ([][]int, int, error) {
	rt.renewMu.Lock()
	defer rt.renewMu.Unlock()
	if rt.degraded.Load() {
		return nil, 0, fmt.Errorf("router degraded: %s", rt.degradedReason())
	}
	if rt.m.epochs.Load() > 0 {
		if err := rt.renewOnce(users); err != nil {
			rt.m.renewErrors.Add(1)
			return nil, 0, err
		}
	}
	parts := make([][]int, rt.s) // users per owning backend, arrival order
	idxs := make([][]int, rt.s)  // each user's position in the batch
	for i, u := range users {
		o := rt.ownerOf(u)
		parts[o] = append(parts[o], u)
		idxs[o] = append(idxs[o], i)
	}
	decisions := make([][]int, len(users))
	errs := make([]error, rt.s)
	var wg sync.WaitGroup
	for o := 0; o < rt.s; o++ {
		if len(parts[o]) == 0 {
			continue
		}
		wg.Add(1)
		go func(o int) {
			defer wg.Done()
			var resp server.ClusterBatchResponse
			if _, err := rt.postJSON(o, "/cluster/batch",
				server.ClusterBatchRequest{Users: parts[o]}, &resp); err != nil {
				errs[o] = err
				return
			}
			if len(resp.Decisions) != len(parts[o]) {
				errs[o] = fmt.Errorf("%d decisions for %d users", len(resp.Decisions), len(parts[o]))
				return
			}
			for k, i := range idxs[o] {
				decisions[i] = resp.Decisions[k]
			}
		}(o)
	}
	wg.Wait()
	for o, err := range errs {
		if err != nil {
			return nil, 0, fmt.Errorf("backend %d: %w", o, err)
		}
	}
	return decisions, int(rt.m.epochs.Load()) + 1, nil
}
