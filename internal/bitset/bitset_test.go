package bitset

import (
	"testing"
	"testing/quick"
)

func TestAddRemoveContains(t *testing.T) {
	s := New(130) // spans three words
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		if s.Contains(i) {
			t.Fatalf("fresh set contains %d", i)
		}
		s.Add(i)
		if !s.Contains(i) {
			t.Fatalf("Add(%d) not visible", i)
		}
	}
	if got := s.Count(); got != 8 {
		t.Fatalf("Count = %d, want 8", got)
	}
	s.Remove(64)
	if s.Contains(64) {
		t.Fatal("Remove(64) not visible")
	}
	if got := s.Count(); got != 7 {
		t.Fatalf("Count after remove = %d, want 7", got)
	}
	s.Remove(64) // removing an absent bit is a no-op
	if got := s.Count(); got != 7 {
		t.Fatalf("Count after double remove = %d, want 7", got)
	}
}

func TestOutOfRangePanics(t *testing.T) {
	s := New(10)
	for _, fn := range []func(){
		func() { s.Add(10) },
		func() { s.Add(-1) },
		func() { s.Contains(10) },
		func() { s.Remove(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic for out-of-range index")
				}
			}()
			fn()
		}()
	}
}

func TestNegativeSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(-1) did not panic")
		}
	}()
	New(-1)
}

func TestZeroCapacity(t *testing.T) {
	s := New(0)
	if s.Count() != 0 || s.Len() != 0 {
		t.Fatal("empty set misbehaves")
	}
	s.ForEach(func(int) { t.Fatal("ForEach on empty set called fn") })
}

func TestCloneIndependence(t *testing.T) {
	s := New(70)
	s.Add(5)
	c := s.Clone()
	c.Add(69)
	if s.Contains(69) {
		t.Fatal("Clone shares storage")
	}
	if !c.Contains(5) {
		t.Fatal("Clone dropped bits")
	}
}

func TestUnionIntersect(t *testing.T) {
	a, b := New(100), New(100)
	a.Add(1)
	a.Add(50)
	b.Add(50)
	b.Add(99)

	u := a.Clone()
	u.Union(b)
	for _, i := range []int{1, 50, 99} {
		if !u.Contains(i) {
			t.Errorf("union missing %d", i)
		}
	}
	if u.Count() != 3 {
		t.Errorf("union count = %d", u.Count())
	}

	x := a.Clone()
	x.Intersect(b)
	if !x.Contains(50) || x.Count() != 1 {
		t.Errorf("intersect wrong: count=%d", x.Count())
	}
}

func TestIntersects(t *testing.T) {
	a, b := New(128), New(128)
	if a.Intersects(b) {
		t.Fatal("empty sets intersect")
	}
	a.Add(64)
	if a.Intersects(b) {
		t.Fatal("disjoint sets intersect")
	}
	b.Add(64)
	if !a.Intersects(b) {
		t.Fatal("overlapping sets do not intersect")
	}
}

func TestMismatchedSizesPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on mismatched sizes")
		}
	}()
	New(10).Intersects(New(11))
}

func TestForEachOrderAndMembers(t *testing.T) {
	s := New(200)
	want := []int{3, 64, 65, 130, 199}
	for _, i := range want {
		s.Add(i)
	}
	var got []int
	s.ForEach(func(i int) { got = append(got, i) })
	if len(got) != len(want) {
		t.Fatalf("ForEach visited %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ForEach order %v, want %v", got, want)
		}
	}
	m := s.Members(nil)
	for i := range want {
		if m[i] != want[i] {
			t.Fatalf("Members = %v, want %v", m, want)
		}
	}
}

// Property: a Set behaves exactly like a map[int]bool under a random
// sequence of adds and removes.
func TestQuickAgainstMap(t *testing.T) {
	f := func(ops []uint16) bool {
		const n = 300
		s := New(n)
		ref := make(map[int]bool)
		for _, op := range ops {
			i := int(op) % n
			if op%2 == 0 {
				s.Add(i)
				ref[i] = true
			} else {
				s.Remove(i)
				delete(ref, i)
			}
		}
		if s.Count() != len(ref) {
			return false
		}
		for i := 0; i < n; i++ {
			if s.Contains(i) != ref[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkIntersects(b *testing.B) {
	a, c := New(4096), New(4096)
	a.Add(4000)
	c.Add(100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = a.Intersects(c)
	}
}
