// Package xrand provides a small, deterministic pseudo-random number
// generator and the sampling distributions used throughout the IGEPA
// reproduction.
//
// The generator is xoshiro256** seeded through splitmix64. It is implemented
// here rather than taken from math/rand so that experiment outputs are
// bit-for-bit reproducible across Go releases: recorded experiment numbers
// depend only on the seed, never on the standard library's generator of the
// day.
//
// The zero value of RNG is not usable; construct one with New.
package xrand

import "math"

// RNG is a deterministic pseudo-random number generator
// (xoshiro256** with splitmix64 seeding). It is not safe for concurrent use;
// give each goroutine its own RNG (see Split).
type RNG struct {
	s [4]uint64
}

// New returns an RNG seeded from seed. Distinct seeds yield independent
// streams for every practical purpose; seed 0 is valid.
func New(seed int64) *RNG {
	r := &RNG{}
	sm := uint64(seed)
	for i := range r.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	return r
}

// Split derives a new, statistically independent RNG from r.
// It advances r. Useful for giving deterministic sub-streams to
// parallel workers.
func (r *RNG) Split() *RNG {
	return New(int64(r.Uint64() ^ 0xd1b54a32d192ed03))
}

// NewStream returns the RNG for sub-stream `stream` of the given seed. The
// streams of one seed are statistically independent of each other and of
// New(seed), and — unlike Split, which advances shared state — depend only
// on (seed, stream). That makes them the right tool for parallel per-item
// randomness: each item i draws from NewStream(seed, i), so results are
// bit-identical no matter how items are distributed over workers.
func NewStream(seed int64, stream uint64) *RNG {
	z := stream + 0xd1b54a32d192ed03
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return New(seed ^ int64(z^(z>>31)))
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Int63 returns a non-negative pseudo-random 63-bit integer.
func (r *RNG) Int63() int64 { return int64(r.Uint64() >> 1) }

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless bounded sampling.
	bound := uint64(n)
	x := r.Uint64()
	hi, lo := mul64(x, bound)
	if lo < bound {
		threshold := -bound % bound
		for lo < threshold {
			x = r.Uint64()
			hi, lo = mul64(x, bound)
		}
	}
	return int(hi)
}

// mul64 returns the 128-bit product of x and y as (hi, lo).
func mul64(x, y uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	x0, x1 := x&mask32, x>>32
	y0, y1 := y&mask32, y>>32
	w0 := x0 * y0
	t := x1*y0 + w0>>32
	w1 := t & mask32
	w2 := t >> 32
	w1 += x0 * y1
	hi = x1*y1 + w2 + w1>>32
	lo = x * y
	return
}

// IntRange returns a uniform integer in [lo, hi] inclusive.
// It panics if hi < lo.
func (r *RNG) IntRange(lo, hi int) int {
	if hi < lo {
		panic("xrand: IntRange with hi < lo")
	}
	return lo + r.Intn(hi-lo+1)
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) * (1.0 / (1 << 53))
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Shuffle pseudo-randomizes the order of n elements using swap
// (Fisher–Yates).
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Binomial returns a sample from Binomial(n, p).
// It uses direct simulation for small n and a normal approximation with
// continuity correction for large n, which is accurate far beyond the needs
// of the degree-distribution experiments.
func (r *RNG) Binomial(n int, p float64) int {
	if n <= 0 || p <= 0 {
		return 0
	}
	if p >= 1 {
		return n
	}
	if n <= 64 {
		k := 0
		for i := 0; i < n; i++ {
			if r.Float64() < p {
				k++
			}
		}
		return k
	}
	mean := float64(n) * p
	sd := math.Sqrt(mean * (1 - p))
	k := int(math.Round(mean + sd*r.NormFloat64()))
	if k < 0 {
		k = 0
	}
	if k > n {
		k = n
	}
	return k
}

// NormFloat64 returns a standard normal sample (Marsaglia polar method).
func (r *RNG) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// Zipf returns a sample in [1, n] from a Zipf distribution with exponent s>0,
// i.e. P(k) ∝ k^(-s). It uses inverse-CDF sampling over a lazily built
// cumulative table (the caller should reuse a Zipfian for repeated draws).
func (r *RNG) Zipf(n int, s float64) int {
	z := NewZipfian(n, s)
	return z.Sample(r)
}

// Zipfian samples from a Zipf distribution over [1, n] with exponent s.
type Zipfian struct {
	cum []float64 // cumulative probabilities, len n
}

// NewZipfian builds the cumulative table for a Zipf(n, s) distribution.
// It panics if n <= 0.
func NewZipfian(n int, s float64) *Zipfian {
	if n <= 0 {
		panic("xrand: Zipfian with non-positive n")
	}
	cum := make([]float64, n)
	total := 0.0
	for k := 1; k <= n; k++ {
		total += math.Pow(float64(k), -s)
		cum[k-1] = total
	}
	for i := range cum {
		cum[i] /= total
	}
	cum[n-1] = 1 // guard against round-off
	return &Zipfian{cum: cum}
}

// Sample draws one value in [1, n].
func (z *Zipfian) Sample(r *RNG) int {
	u := r.Float64()
	lo, hi := 0, len(z.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cum[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo + 1
}

// Categorical samples an index i with probability weights[i]/Σweights, or
// returns -1 with the deficit probability 1−Σweights (the weights need not
// sum to one; they must be non-negative and sum to at most 1+1e-9).
// This is exactly the sub-distribution sampling used by LP-packing's
// rounding step (sample set S with probability α·x*_{u,S}, nothing
// otherwise).
func (r *RNG) Categorical(weights []float64) int {
	u := r.Float64()
	acc := 0.0
	for i, w := range weights {
		if w < 0 {
			panic("xrand: Categorical with negative weight")
		}
		acc += w
		if u < acc {
			return i
		}
	}
	return -1
}

// Hash64 returns 64 deterministic pseudo-uniform bits derived from
// (seed, a, b) via splitmix64 finalization. It is the stateless counterpart
// of NewStream: the right tool when a single well-mixed value per item is
// needed rather than a whole stream — the sharded serving layer hashes users
// to shards with it, so the partition depends only on (seed, user), never on
// arrival order or worker scheduling.
func Hash64(seed int64, a, b int) uint64 {
	z := uint64(seed) ^ 0x9e3779b97f4a7c15
	z ^= uint64(a)*0xff51afd7ed558ccd + uint64(b)*0xc4ceb9fe1a85ec53
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// HashFloat returns a deterministic pseudo-uniform value in [0,1) derived
// from (seed, a, b) via splitmix64 finalization. It is used for implicit
// interest tables: SI(u, v) can be evaluated lazily without materializing a
// |U|×|V| matrix, yet is stable for a given seed.
func HashFloat(seed int64, a, b int) float64 {
	return float64(Hash64(seed, a, b)>>11) * (1.0 / (1 << 53))
}
