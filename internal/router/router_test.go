package router

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"github.com/ebsn/igepa/internal/model"
	"github.com/ebsn/igepa/internal/model/modeltest"
	"github.com/ebsn/igepa/internal/server"
	"github.com/ebsn/igepa/internal/shard"
	"github.com/ebsn/igepa/internal/workload"
	"github.com/ebsn/igepa/internal/xrand"
)

type cancelRequest struct {
	User int `json:"user"`
}

func testInstance(t testing.TB, seed int64, nu, nv int) *model.Instance {
	t.Helper()
	in, err := workload.Synthetic(workload.SyntheticConfig{
		Seed: seed, NumEvents: nv, NumUsers: nu,
		MaxEventCap: 10, MaxUserCap: 3, MinBids: 2, MaxBids: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	return in
}

// cluster is a full in-process deployment: S shard backends behind one
// router, each backend an httptest server over a cluster-mode server.Server.
type cluster struct {
	rt       *Router
	backends []*server.Server
	ts       []*httptest.Server
	urls     []string
}

// startCluster boots S cluster shards and a router over them. opt carries
// the shared Batch/Seed/CacheSize; per-backend ClusterShards/Index and the
// router's Shards are derived from s.
func startCluster(t testing.TB, in *model.Instance, s int, opt shard.Options, rcfg Config) *cluster {
	t.Helper()
	cl := &cluster{}
	for si := 0; si < s; si++ {
		bopt := opt
		bopt.Shards = 1
		bopt.ClusterShards = s
		bopt.ClusterIndex = si
		srv, err := server.New(in, server.Config{Shard: bopt, FlushInterval: 100 * time.Microsecond})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv)
		t.Cleanup(ts.Close)
		t.Cleanup(func() { srv.Close() })
		cl.backends = append(cl.backends, srv)
		cl.ts = append(cl.ts, ts)
		cl.urls = append(cl.urls, ts.URL)
	}
	rcfg.Backends = cl.urls
	ropt := opt
	ropt.Shards = s
	ropt.ClusterShards, ropt.ClusterIndex = 0, 0
	rcfg.Shard = ropt
	rt, err := New(in, rcfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	if err := rt.CheckBackends(); err != nil {
		t.Fatal(err)
	}
	cl.rt = rt
	return cl
}

// call drives the router handler directly (the httptest transport throttles
// badly on single-CPU runners; the backends are still reached over real
// HTTP).
func (cl *cluster) call(t testing.TB, method, path string, body, out any) int {
	t.Helper()
	var rd *bytes.Reader
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(raw)
	} else {
		rd = bytes.NewReader(nil)
	}
	req := httptest.NewRequest(method, path, rd)
	rec := httptest.NewRecorder()
	cl.rt.ServeHTTP(rec, req)
	if out != nil && rec.Code < 300 {
		if err := json.Unmarshal(rec.Body.Bytes(), out); err != nil {
			t.Fatalf("%s %s: decoding %q: %v", method, path, rec.Body.String(), err)
		}
	}
	return rec.Code
}

// TestRouterReplayBitIdentical is the acceptance pin for the distributed
// tier: a cluster of S shard processes behind the replay router makes
// exactly ServeSharded's decisions — same arrangement, same renewal
// schedule, same moved-seat count — on the synthetic and Meetup fixtures.
func TestRouterReplayBitIdentical(t *testing.T) {
	fixtures := []struct {
		name string
		in   *model.Instance
	}{
		{"synthetic", testInstance(t, 11, 200, 30)},
	}
	if mu, err := workload.Meetup(workload.MeetupConfig{Seed: 5, NumEvents: 40, NumUsers: 250}); err == nil {
		fixtures = append(fixtures, struct {
			name string
			in   *model.Instance
		}{"meetup", mu})
	} else {
		t.Fatal(err)
	}

	for _, fx := range fixtures {
		order := xrand.New(9).Perm(fx.in.NumUsers())
		for _, s := range []int{2, 4} {
			t.Run(fmt.Sprintf("%s/S=%d", fx.name, s), func(t *testing.T) {
				opt := shard.Options{Batch: 32, Seed: 42, CacheSize: 512}
				sharded := opt
				sharded.Shards = s
				want, err := shard.Serve(fx.in, order, sharded)
				if err != nil {
					t.Fatal(err)
				}

				cl := startCluster(t, fx.in, s, opt, Config{
					Replay: true, QueueDepth: len(order) + 16,
				})
				for _, u := range order {
					noWait := false
					if code := cl.call(t, "POST", "/v1/bid", bidRequest{User: u, Wait: &noWait}, nil); code != http.StatusAccepted {
						t.Fatalf("submit user %d: %d", u, code)
					}
				}
				var dr struct {
					Drained bool `json:"drained"`
				}
				cl.call(t, "POST", "/admin/drain", nil, &dr)
				if !dr.Drained {
					t.Fatal("drain timed out")
				}
				var dump struct {
					Sets [][]int `json:"sets"`
				}
				if code := cl.call(t, "GET", "/v1/assignment", nil, &dump); code != http.StatusOK {
					t.Fatalf("assignment dump: %d", code)
				}
				got := &model.Arrangement{Sets: dump.Sets}
				modeltest.RequireEqual(t, t.Name(), want.Arrangement, got)

				st := cl.rt.Stats()
				if st.LeaseRenewals != want.LeaseRenewals {
					t.Errorf("router ran %d renewals, ServeSharded %d", st.LeaseRenewals, want.LeaseRenewals)
				}
				if st.MovedSeats != want.MovedSeats {
					t.Errorf("router moved %d seats, ServeSharded %d", st.MovedSeats, want.MovedSeats)
				}
				if int(st.Epochs) != want.Epochs {
					t.Errorf("router dispatched %d epochs, ServeSharded %d", st.Epochs, want.Epochs)
				}
				if st.Degraded {
					t.Fatalf("router degraded during a clean replay: %s", st.DegradedReason)
				}
				// per-user point reads agree with the dump through the router
				for _, u := range order[:10] {
					var asg struct {
						Events []int `json:"events"`
					}
					if code := cl.call(t, "GET", fmt.Sprintf("/v1/assignment?user=%d", u), nil, &asg); code != http.StatusOK {
						t.Fatalf("assignment for %d: %d", u, code)
					}
					if fmt.Sprint(asg.Events) != fmt.Sprint(want.Arrangement.Sets[u]) &&
						!(len(asg.Events) == 0 && len(want.Arrangement.Sets[u]) == 0) {
						t.Fatalf("user %d: point read %v, Serve decided %v", u, asg.Events, want.Arrangement.Sets[u])
					}
				}
			})
		}
	}
}

// TestRouterLiveServes exercises the live proxy under concurrency (-race):
// parallel bids, cancels and reads through the router against two real
// backends, then checks the merged view is consistent and feasible.
func TestRouterLiveServes(t *testing.T) {
	in := testInstance(t, 21, 120, 16)
	cl := startCluster(t, in, 2, shard.Options{Batch: 16, Seed: 7, CacheSize: 128}, Config{})

	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for u := w; u < in.NumUsers(); u += workers {
				var bid struct {
					Events []int `json:"events"`
				}
				code := cl.call(t, "POST", "/v1/bid", bidRequest{User: u}, &bid)
				if code != http.StatusOK {
					t.Errorf("bid %d: %d", u, code)
					return
				}
				if u%3 == 0 {
					cl.call(t, "GET", fmt.Sprintf("/v1/assignment?user=%d", u), nil, nil)
				}
				if u%5 == 0 && len(bid.Events) > 0 {
					if code := cl.call(t, "POST", "/v1/cancel", cancelRequest{User: u}, nil); code != http.StatusOK {
						t.Errorf("cancel %d: %d", u, code)
					}
				}
			}
		}(w)
	}
	wg.Wait()

	var dr struct {
		Drained bool `json:"drained"`
	}
	cl.call(t, "POST", "/admin/drain", nil, &dr)
	if !dr.Drained {
		t.Fatal("drain timed out")
	}
	var dump struct {
		Sets [][]int `json:"sets"`
	}
	if code := cl.call(t, "GET", "/v1/assignment", nil, &dump); code != http.StatusOK {
		t.Fatalf("assignment dump: %d", code)
	}
	modeltest.RequireFeasible(t, "live cluster arrangement", in, &model.Arrangement{Sets: dump.Sets})

	st := cl.rt.Stats()
	if st.Degraded {
		t.Fatalf("router degraded: %s", st.DegradedReason)
	}
	if st.Arrivals == 0 || st.Utility <= 0 {
		t.Fatalf("no traffic accounted: %+v", st)
	}
	// the load view sums coherently against capacity
	var load []struct {
		Event, Load, Capacity int
	}
	if code := cl.call(t, "GET", "/v1/load", nil, &load); code != http.StatusOK {
		t.Fatalf("load: %d", code)
	}
	if len(load) != in.NumEvents() {
		t.Fatalf("load rows: %d, want %d", len(load), in.NumEvents())
	}
	for _, row := range load {
		if row.Load > row.Capacity {
			t.Fatalf("merged load exceeds capacity: %+v", row)
		}
	}
}

// TestRouterMigration pins the join/leave path: a decided user range moves
// between backends through /admin/migrate; assignments survive, the source
// answers 421 directly, the router keeps serving the range seamlessly, and
// new traffic for the range lands on the target.
func TestRouterMigration(t *testing.T) {
	in := testInstance(t, 25, 100, 12)
	seed := int64(7)
	cl := startCluster(t, in, 2, shard.Options{Batch: 16, Seed: seed, CacheSize: 128}, Config{})

	// collect users owned by shard 0: some decided, one left un-submitted
	var owned []int
	for u := 0; u < in.NumUsers() && len(owned) < 4; u++ {
		if shard.ShardOf(seed, u, 2) == 0 {
			owned = append(owned, u)
		}
	}
	decided := owned[:3]
	fresh := owned[3]
	before := make(map[int][]int)
	for _, u := range decided {
		var bid struct {
			Events []int `json:"events"`
		}
		if code := cl.call(t, "POST", "/v1/bid", bidRequest{User: u}, &bid); code != http.StatusOK {
			t.Fatalf("bid %d: %d", u, code)
		}
		before[u] = bid.Events
	}

	movers := append(append([]int(nil), decided...), fresh)
	var mr struct {
		Migrated int `json:"migrated"`
		Seats    int `json:"seats_moved"`
	}
	if code := cl.call(t, "POST", "/admin/migrate", MigrateRequest{From: 0, To: 1, Users: movers}, &mr); code != http.StatusOK {
		t.Fatalf("migrate: %d", code)
	}
	wantSeats := 0
	for _, u := range decided {
		wantSeats += len(before[u])
	}
	if mr.Migrated != len(movers) || mr.Seats != wantSeats {
		t.Fatalf("migrate reported %+v, want %d users / %d seats", mr, len(movers), wantSeats)
	}
	// re-migrating the same range from 0 conflicts: the router knows they moved
	if code := cl.call(t, "POST", "/admin/migrate", MigrateRequest{From: 0, To: 1, Users: movers}, nil); code != http.StatusConflict {
		t.Fatalf("double migrate: %d, want 409", code)
	}

	// assignments survive the move, served through the router
	for _, u := range decided {
		var asg struct {
			Events  []int `json:"events"`
			Decided bool  `json:"decided"`
		}
		if code := cl.call(t, "GET", fmt.Sprintf("/v1/assignment?user=%d", u), nil, &asg); code != http.StatusOK {
			t.Fatalf("assignment %d after migrate: %d", u, code)
		}
		if !asg.Decided || fmt.Sprint(asg.Events) != fmt.Sprint(before[u]) {
			t.Fatalf("user %d: %v after migrate, decided %v", u, asg.Events, before[u])
		}
	}
	// the source now 421s direct requests for the range
	resp, err := http.Get(cl.urls[0] + fmt.Sprintf("/v1/assignment?user=%d", decided[0]))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMisdirectedRequest {
		t.Fatalf("source backend after migrate: %d, want 421", resp.StatusCode)
	}
	// new traffic for the migrated range decides on the target
	var bid struct {
		Events []int `json:"events"`
	}
	if code := cl.call(t, "POST", "/v1/bid", bidRequest{User: fresh}, &bid); code != http.StatusOK {
		t.Fatalf("bid for migrated fresh user: %d", code)
	}
	tresp, err := http.Get(cl.urls[1] + fmt.Sprintf("/v1/assignment?user=%d", fresh))
	if err != nil {
		t.Fatal(err)
	}
	tresp.Body.Close()
	if tresp.StatusCode != http.StatusOK {
		t.Fatalf("target backend does not serve the migrated fresh user: %d", tresp.StatusCode)
	}
	// cancels route to the new owner too
	if len(before[decided[0]]) > 0 {
		if code := cl.call(t, "POST", "/v1/cancel", cancelRequest{User: decided[0]}, nil); code != http.StatusOK {
			t.Fatalf("cancel after migrate: %d", code)
		}
	}
	if cl.rt.Stats().Degraded {
		t.Fatalf("router degraded: %s", cl.rt.Stats().DegradedReason)
	}
}

// TestRouterDegradesFailStop pins the fail-stop discipline: when a backend
// dies mid-deployment the router stops accepting writes (503) instead of
// serving a split-brain view, and /readyz goes false.
func TestRouterDegradesFailStop(t *testing.T) {
	in := testInstance(t, 27, 80, 10)
	cl := startCluster(t, in, 2, shard.Options{Batch: 8, Seed: 7}, Config{
		Replay: true, QueueDepth: 256, Timeout: 2 * time.Second, Retries: 0,
	})
	noWait := false
	// first batch decides cleanly
	var submitted []int
	for u := 0; u < in.NumUsers() && len(submitted) < 8; u++ {
		if code := cl.call(t, "POST", "/v1/bid", bidRequest{User: u, Wait: &noWait}, nil); code != http.StatusAccepted {
			t.Fatalf("submit %d: %d", u, code)
		}
		submitted = append(submitted, u)
	}
	cl.call(t, "POST", "/admin/drain", nil, nil)
	if cl.rt.Stats().Degraded {
		t.Fatal("degraded before any fault")
	}

	// kill backend 1's listener and push another batch through
	cl.ts[1].Close()
	for u := in.NumUsers() - 1; u >= in.NumUsers()-8; u-- {
		cl.call(t, "POST", "/v1/bid", bidRequest{User: u, Wait: &noWait}, nil)
	}
	deadline := time.Now().Add(10 * time.Second)
	for !cl.rt.Stats().Degraded {
		if time.Now().After(deadline) {
			t.Fatal("router never degraded after losing a backend")
		}
		time.Sleep(10 * time.Millisecond)
	}
	// degraded is sticky: writes bounce 503
	if code := cl.call(t, "POST", "/v1/bid", bidRequest{User: 0, Wait: &noWait}, nil); code != http.StatusServiceUnavailable {
		t.Fatalf("bid on a degraded router: %d, want 503", code)
	}
	if code := cl.call(t, "POST", "/admin/migrate", MigrateRequest{From: 0, To: 1, Users: submitted}, nil); code != http.StatusServiceUnavailable {
		t.Fatalf("migrate on a degraded router: %d, want 503", code)
	}
	var rd struct {
		Ready bool `json:"ready"`
	}
	cl.call(t, "GET", "/readyz", nil, &rd)
	if rd.Ready {
		t.Fatal("degraded router reports ready")
	}
}

// TestRouterConfigValidation pins New's guardrails.
func TestRouterConfigValidation(t *testing.T) {
	in := testInstance(t, 29, 20, 6)
	if _, err := New(in, Config{}); err == nil {
		t.Fatal("New accepted an empty backend list")
	}
	if _, err := New(in, Config{
		Backends: []string{"http://a", "http://b"},
		Shard:    shard.Options{Shards: 3},
	}); err == nil {
		t.Fatal("New accepted Shards != len(Backends)")
	}
}
