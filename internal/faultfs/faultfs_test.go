package faultfs

import (
	"bytes"
	"errors"
	"testing"
)

func TestCrashAfterTearsTheCrossingWrite(t *testing.T) {
	mem := &MemFile{}
	f := Wrap(mem, Fault{CrashAfter: 10})
	if n, err := f.Write([]byte("12345678")); n != 8 || err != nil {
		t.Fatalf("write below the boundary: n=%d err=%v", n, err)
	}
	n, err := f.Write([]byte("abcdef"))
	if n != 2 || !errors.Is(err, ErrInjected) {
		t.Fatalf("crossing write: n=%d err=%v, want 2 torn bytes and ErrInjected", n, err)
	}
	if !f.Crashed() || f.Written() != 10 {
		t.Fatalf("crashed=%v written=%d, want true/10", f.Crashed(), f.Written())
	}
	if got := mem.Bytes(); !bytes.Equal(got, []byte("12345678ab")) {
		t.Fatalf("surviving image %q", got)
	}
}

func TestCrashAfterZeroMeansNothingLands(t *testing.T) {
	mem := &MemFile{}
	f := Wrap(mem, Fault{CrashAfter: 0})
	if n, err := f.Write([]byte("x")); n != 0 || !errors.Is(err, ErrInjected) {
		t.Fatalf("n=%d err=%v, want 0/ErrInjected", n, err)
	}
	if mem.Len() != 0 {
		t.Fatalf("%d bytes survived a crash-at-zero", mem.Len())
	}
}

func TestWedgedAfterCrash(t *testing.T) {
	f := Wrap(&MemFile{}, Fault{CrashAfter: 1})
	f.Write([]byte("ab")) // triggers
	if _, err := f.Write([]byte("c")); !errors.Is(err, ErrInjected) {
		t.Fatalf("write after crash: %v, want ErrInjected", err)
	}
	if err := f.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("sync after crash: %v, want ErrInjected", err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("close must still release the backing file: %v", err)
	}
}

func TestFailSyncAt(t *testing.T) {
	f := Wrap(&MemFile{}, Fault{CrashAfter: Disabled, FailSyncAt: 2})
	if err := f.Sync(); err != nil {
		t.Fatalf("sync 1: %v", err)
	}
	if err := f.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("sync 2: %v, want ErrInjected", err)
	}
	if _, err := f.Write([]byte("x")); !errors.Is(err, ErrInjected) {
		t.Fatalf("write after failed fsync: %v, want ErrInjected (wedged)", err)
	}
}

func TestDisabledPassesThrough(t *testing.T) {
	mem := &MemFile{}
	f := Wrap(mem, Fault{CrashAfter: Disabled})
	for i := 0; i < 100; i++ {
		if _, err := f.Write([]byte("0123456789")); err != nil {
			t.Fatal(err)
		}
		if err := f.Sync(); err != nil {
			t.Fatal(err)
		}
	}
	if f.Crashed() || mem.Len() != 1000 {
		t.Fatalf("crashed=%v len=%d, want false/1000", f.Crashed(), mem.Len())
	}
}
