package shard

// The live LP bound: an engine-owned incremental planner (core.Planner)
// over a shadow copy of the instance, updated per dispatched batch (and at
// the live server's renewal points). Each served user leaves the shadow
// problem (their bids clear) and their granted seats leave its capacities;
// a cancellation restores both, and an in-place bid replacement for an
// undecided user (Engine.NoteBidUpdate) makes the shadow re-read their
// bids. The planner's objective is then a certified upper bound on the
// utility still reachable from the remaining bids and seats — the
// serving-time counterpart of Lemma 1's offline bound, cheap enough to
// keep per batch now that Planner.Update is delta-scoped.
//
// Bound maintenance never influences decisions: the shadow instance is
// private, updates run strictly after a batch's grants are final, and the
// per-shard pending queues are written only by their own shard's serving
// path (so the engine's worker-invariance contract is untouched).

import (
	"fmt"
	"time"

	"github.com/ebsn/igepa/internal/core"
	"github.com/ebsn/igepa/internal/lp"
	"github.com/ebsn/igepa/internal/model"
)

// boundWindow bounds the retained trace/latency history so a long-running
// server's bound tracker uses constant memory; when the buffers grow past
// twice the window, the older half is dropped.
const boundWindow = 4096

// boundEvent is one serving action awaiting application to the shadow
// problem: a grant (bids leave, seats arena[lo:hi] leave), a cancel (bids
// re-read from the source instance, seats return), or a re-bid (restore =
// true with no seats: an undecided user's bids were replaced in place, so
// the shadow must re-read them).
type boundEvent struct {
	user    int
	lo, hi  int32 // seat slice in the shard's arena
	restore bool  // re-read bids from src (cancel / re-bid) instead of clearing
}

// boundShard is one shard's pending-event queue. Events and their seat
// lists live in flat per-shard arenas reset at every apply, so recording an
// arrival on the serving hot path allocates nothing in the steady state.
type boundShard struct {
	events []boundEvent
	arena  []int
}

// boundTracker is the engine's live-bound state.
type boundTracker struct {
	src     *model.Instance // the serving instance (for bid restores)
	shadow  *model.Instance
	planner *core.Planner
	pending []boundShard // per shard, drained under the engine driver

	bound   float64
	updates int
	errs    int
	trace   []float64
	lat     []time.Duration

	delta   core.Delta
	seat    []int // per-event net seat delta scratch
	touched []int
}

// BoundStats is the live LP bound's outcome, returned in Result.Bound and
// behind Engine.BoundStats (nil unless Options.LiveBound).
type BoundStats struct {
	// Remaining is the latest remaining-opportunity LP bound: committed
	// utility plus Remaining upper-bounds the best total still reachable.
	Remaining float64
	// Updates and Errors count planner bound updates (one per dispatched
	// batch, or per renewal point on the live server) and their failures.
	Updates, Errors int
	// Trace is the bound after each update (most recent boundWindow).
	Trace []float64
	// UpdateLatencies are the per-update planner latencies (same window) —
	// the cost of keeping the bound, reported separately from decision
	// latency.
	UpdateLatencies []time.Duration
	// Solver reports the bound planner's warm/cold LP counters.
	Solver lp.SolverStats
}

// newBoundTracker clones the instance and cold-solves the initial bound.
func newBoundTracker(in *model.Instance, s int, opt Options) (*boundTracker, error) {
	shadow := in.Clone()
	pl, err := core.NewPlanner(shadow, core.Options{
		Seed: opt.Seed, Workers: opt.Workers,
		MaxSetsPerUser: opt.MaxSetsPerUser, LP: opt.LP,
	})
	if err != nil {
		return nil, fmt.Errorf("shard: live-bound planner: %w", err)
	}
	return &boundTracker{
		src:     in,
		shadow:  shadow,
		planner: pl,
		pending: make([]boundShard, s),
		bound:   pl.Objective(),
		seat:    make([]int, in.NumEvents()),
	}, nil
}

// close releases the bound planner's solver state.
func (bt *boundTracker) close() {
	if bt != nil && bt.planner != nil {
		bt.planner.Close()
	}
}

// record appends an action to a shard's pending queue. Called only from
// that shard's serving path (or with every shard excluded, for re-bids), so
// pending[si] never sees concurrent writers.
func (bt *boundTracker) record(si, u int, events []int, restore bool) {
	ps := &bt.pending[si]
	lo := int32(len(ps.arena))
	ps.arena = append(ps.arena, events...)
	ps.events = append(ps.events, boundEvent{user: u, lo: lo, hi: int32(len(ps.arena)), restore: restore})
}

// apply drains every shard's pending queue into the shadow instance and
// re-solves the bound. Must run from the engine's (single-threaded) driver
// context — the same exclusion DispatchBatch and RenewLeases require.
func (bt *boundTracker) apply() (float64, error) {
	d := &bt.delta
	d.Users = d.Users[:0]
	d.Events = d.Events[:0]
	bt.touched = bt.touched[:0]
	n := 0
	for si := range bt.pending {
		ps := &bt.pending[si]
		for _, ev := range ps.events {
			if ev.restore {
				bt.shadow.Users[ev.user].Bids = append([]int(nil), bt.src.Users[ev.user].Bids...)
			} else {
				bt.shadow.Users[ev.user].Bids = nil
			}
			d.Users = append(d.Users, ev.user)
			for _, v := range ps.arena[ev.lo:ev.hi] {
				if bt.seat[v] == 0 {
					bt.touched = append(bt.touched, v)
				}
				if ev.restore {
					bt.seat[v]++
				} else {
					bt.seat[v]--
				}
			}
			n++
		}
		ps.events = ps.events[:0]
		ps.arena = ps.arena[:0]
	}
	if n == 0 {
		return bt.bound, nil
	}
	for _, v := range bt.touched {
		bt.shadow.Events[v].Capacity += bt.seat[v]
		bt.seat[v] = 0
		d.Events = append(d.Events, v)
	}
	t0 := time.Now()
	res, err := bt.planner.Update(*d)
	took := time.Since(t0)
	if err != nil {
		bt.errs++
		return bt.bound, err
	}
	bt.bound = res.LPObjective
	bt.updates++
	bt.trace = append(bt.trace, bt.bound)
	bt.lat = append(bt.lat, took)
	if len(bt.trace) > 2*boundWindow {
		bt.trace = append(bt.trace[:0], bt.trace[len(bt.trace)-boundWindow:]...)
		bt.lat = append(bt.lat[:0], bt.lat[len(bt.lat)-boundWindow:]...)
	}
	return bt.bound, nil
}

// stats assembles a copied snapshot.
func (bt *boundTracker) stats() *BoundStats {
	if bt == nil {
		return nil
	}
	return &BoundStats{
		Remaining:       bt.bound,
		Updates:         bt.updates,
		Errors:          bt.errs,
		Trace:           append([]float64(nil), bt.trace...),
		UpdateLatencies: append([]time.Duration(nil), bt.lat...),
		Solver:          bt.planner.Stats(),
	}
}

// BoundEnabled reports whether the engine tracks the live LP bound.
func (e *Engine) BoundEnabled() bool { return e.bound != nil }

// LiveBound returns the latest remaining-opportunity LP bound; ok is false
// when Options.LiveBound is off.
func (e *Engine) LiveBound() (bound float64, ok bool) {
	if e.bound == nil {
		return 0, false
	}
	return e.bound.bound, true
}

// UpdateBound applies every pending serving action to the shadow problem
// and warm re-solves the bound. DispatchBatch calls it per batch; live
// drivers that serve through ArriveOn/CancelOn call it at their renewal
// points. Requires the same whole-engine exclusion as RenewLeases. The
// error reports a bound-planner failure; decisions are unaffected and the
// tracker keeps its previous bound.
func (e *Engine) UpdateBound() (float64, error) {
	if e.bound == nil {
		return 0, nil
	}
	return e.bound.apply()
}

// BoundStats returns a snapshot of the live-bound tracker, nil when
// disabled.
func (e *Engine) BoundStats() *BoundStats { return e.bound.stats() }

// NoteBidUpdate records an in-place bid replacement for an undecided user,
// so the live-bound shadow re-reads their bids at the next UpdateBound
// (ordered before any later arrival of the same user in the same shard
// queue). No-op unless Options.LiveBound. The caller must exclude the
// user's shard — the HTTP layer's bid-update path holds every shard lock.
func (e *Engine) NoteBidUpdate(u int) {
	if e.bound != nil {
		e.bound.record(e.ShardOf(u), u, nil, true)
	}
}
