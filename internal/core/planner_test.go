package core

import (
	"math"
	"reflect"
	"runtime"
	"testing"

	"github.com/ebsn/igepa/internal/lp"
	"github.com/ebsn/igepa/internal/model"
	"github.com/ebsn/igepa/internal/workload"
	"github.com/ebsn/igepa/internal/xrand"
)

// plannerObjTol is the warm-vs-cold objective tolerance: both solves prove
// optimality of the same LP (certified by lp.Verify below), but may stop at
// different vertices of a degenerate optimum.
const plannerObjTol = 1e-8

// mutateInstance applies a scripted random mutation to the instance —
// add/remove bids, shrink or restore event capacities — and returns the
// delta describing it. The instance stays structurally valid (sorted bids,
// non-negative capacities).
func mutateInstance(in *model.Instance, rng *xrand.RNG) Delta {
	var d Delta
	nu, nv := in.NumUsers(), in.NumEvents()
	users := 1 + rng.Intn(3)
	for k := 0; k < users; k++ {
		u := rng.Intn(nu)
		usr := &in.Users[u]
		switch {
		case len(usr.Bids) > 0 && rng.Bool(0.5):
			// a bid expires
			i := rng.Intn(len(usr.Bids))
			usr.Bids = append(usr.Bids[:i:i], usr.Bids[i+1:]...)
		default:
			// a bid arrives (sorted insert, skip if already present)
			v := rng.Intn(nv)
			if !model.Contains(usr.Bids, v) {
				bids := append([]int(nil), usr.Bids...)
				bids = append(bids, v)
				for i := len(bids) - 1; i > 0 && bids[i-1] > bids[i]; i-- {
					bids[i-1], bids[i] = bids[i], bids[i-1]
				}
				usr.Bids = bids
			}
		}
		d.Users = append(d.Users, u)
	}
	if rng.Bool(0.7) {
		v := rng.Intn(nv)
		ev := &in.Events[v]
		if ev.Capacity > 0 && rng.Bool(0.7) {
			ev.Capacity-- // a seat is consumed elsewhere
		} else {
			ev.Capacity++
		}
		d.Events = append(d.Events, v)
	}
	return d
}

// requireUpdateMatchesColdRebuild runs one Update and cross-checks it
// against a from-scratch Planner on the identical mutated instance: both
// must certify their LP solutions and agree on the optimum.
func requireUpdateMatchesColdRebuild(t *testing.T, label string, p *Planner, d Delta) {
	t.Helper()
	res, err := p.Update(d)
	if err != nil {
		t.Fatalf("%s: Update: %v", label, err)
	}
	if err := lp.Verify(p.solver.Problem(), p.sol, 1e-6); err != nil {
		t.Fatalf("%s: warm LP solution fails certification: %v", label, err)
	}
	if err := model.Validate(p.in, res.Arrangement); err != nil {
		t.Fatalf("%s: rounded arrangement infeasible: %v", label, err)
	}
	cold, err := NewPlanner(p.in, p.opt)
	if err != nil {
		t.Fatalf("%s: cold rebuild: %v", label, err)
	}
	defer cold.Close()
	if err := lp.Verify(cold.solver.Problem(), cold.sol, 1e-6); err != nil {
		t.Fatalf("%s: cold LP solution fails certification: %v", label, err)
	}
	if math.Abs(res.LPObjective-cold.Objective()) > plannerObjTol*(1+math.Abs(cold.Objective())) {
		t.Fatalf("%s: warm objective %v vs cold rebuild %v", label, res.LPObjective, cold.Objective())
	}
}

func TestPlannerMatchesLPPacking(t *testing.T) {
	for _, tc := range []struct {
		name string
		in   *model.Instance
	}{
		{"synthetic", parallelTestInstance(t)},
		{"meetup", meetupTestInstance(t)},
	} {
		opt := Options{Seed: 42}
		p, err := NewPlanner(tc.in, opt)
		if err != nil {
			t.Fatal(err)
		}
		res, err := p.Round()
		if err != nil {
			t.Fatal(err)
		}
		// LPPacking auto-selects the same revised solver at this size, from
		// the same cold start: the pipelines must agree bit-for-bit.
		want, err := LPPacking(tc.in, opt)
		if err != nil {
			t.Fatal(err)
		}
		if res.LPObjective != want.LPObjective {
			t.Errorf("%s: planner LP objective %v, LPPacking %v", tc.name, res.LPObjective, want.LPObjective)
		}
		if !reflect.DeepEqual(res.Arrangement.Sets, want.Arrangement.Sets) {
			t.Errorf("%s: planner arrangement differs from LPPacking", tc.name)
		}
		if res.Utility != want.Utility {
			t.Errorf("%s: planner utility %v, LPPacking %v", tc.name, res.Utility, want.Utility)
		}
		// Round is deterministic: a second call changes nothing.
		again, err := p.Round()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(res.Arrangement.Sets, again.Arrangement.Sets) {
			t.Errorf("%s: Round not deterministic", tc.name)
		}
		p.Close()
	}
}

func meetupTestInstance(t *testing.T) *model.Instance {
	t.Helper()
	in, err := workload.Meetup(workload.MeetupConfig{Seed: 3, NumEvents: 60, NumUsers: 450})
	if err != nil {
		t.Fatal(err)
	}
	return in
}

// TestPlannerUpdateMatchesColdRebuild is the pinned warm-vs-cold equivalence
// suite: a chain of scripted mutations on synthetic and Meetup instances,
// every step certified against the current LP and compared to a cold
// rebuild.
func TestPlannerUpdateMatchesColdRebuild(t *testing.T) {
	for _, tc := range []struct {
		name string
		in   *model.Instance
	}{
		{"synthetic", parallelTestInstance(t)},
		{"meetup", meetupTestInstance(t)},
	} {
		p, err := NewPlanner(tc.in, Options{Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		rng := xrand.New(1234)
		for step := 0; step < 6; step++ {
			d := mutateInstance(tc.in, rng)
			requireUpdateMatchesColdRebuild(t, tc.name, p, d)
		}
		stats := p.Stats()
		if stats.WarmSolves == 0 {
			t.Errorf("%s: no update took the warm path: %+v", tc.name, stats)
		}
		t.Logf("%s: solver stats %+v", tc.name, stats)
		p.Close()
	}
}

// TestPlannerWorkerInvariance pins that the incremental path, like the
// one-shot pipeline, is bit-identical for every worker count.
func TestPlannerWorkerInvariance(t *testing.T) {
	base := parallelTestInstance(t)
	run := func(workers int) *Result {
		in := cloneInstance(base)
		p, err := NewPlanner(in, Options{Seed: 9, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		defer p.Close()
		rng := xrand.New(55)
		var res *Result
		for step := 0; step < 3; step++ {
			d := mutateInstance(in, rng)
			res, err = p.Update(d)
			if err != nil {
				t.Fatal(err)
			}
		}
		return res
	}
	ref := run(1)
	for _, workers := range []int{2, 4, 8} {
		got := run(workers)
		sameResult(t, "planner workers", ref, got)
	}
}

// TestPlannerGOMAXPROCSInvariance re-runs the update chain under different
// GOMAXPROCS values, which drive every auto-sized pool in the pipeline.
func TestPlannerGOMAXPROCSInvariance(t *testing.T) {
	base := parallelTestInstance(t)
	old := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(old)

	run := func() *Result {
		in := cloneInstance(base)
		p, err := NewPlanner(in, Options{Seed: 13})
		if err != nil {
			t.Fatal(err)
		}
		defer p.Close()
		rng := xrand.New(77)
		var res *Result
		for step := 0; step < 3; step++ {
			res, err = p.Update(mutateInstance(in, rng))
			if err != nil {
				t.Fatal(err)
			}
		}
		return res
	}
	runtime.GOMAXPROCS(1)
	ref := run()
	runtime.GOMAXPROCS(4)
	sameResult(t, "planner GOMAXPROCS 1 vs 4", ref, run())
}

func TestPlannerRejectsBadOptions(t *testing.T) {
	in := parallelTestInstance(t)
	if _, err := NewPlanner(in, Options{Presolve: true}); err == nil {
		t.Error("Presolve accepted by incremental planner")
	}
	if _, err := NewPlanner(in, Options{Solver: &lp.Dense{}}); err == nil {
		t.Error("explicit Solver accepted by incremental planner")
	}
	if _, err := NewPlanner(in, Options{Alpha: 2}); err == nil {
		t.Error("alpha > 1 accepted")
	}
	p, err := NewPlanner(in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if _, err := p.Update(Delta{Users: []int{-1}}); err == nil {
		t.Error("negative user index accepted")
	}
	if _, err := p.Update(Delta{Users: []int{in.NumUsers()}}); err == nil {
		t.Error("out-of-range user index accepted")
	}
	if _, err := p.Update(Delta{Events: []int{in.NumEvents()}}); err == nil {
		t.Error("out-of-range event index accepted")
	}
}

// cloneInstance deep-copies the mutable parts of an instance so mutation
// chains can be replayed from the same start state.
func cloneInstance(in *model.Instance) *model.Instance { return in.Clone() }

// FuzzPlannerUpdate mutates an instance through a Planner — bids arriving
// and expiring, capacities shrinking and growing — asserting after every
// update that the warm re-solve matches a cold rebuild and certifies.
func FuzzPlannerUpdate(f *testing.F) {
	f.Add(int64(1), uint8(4))
	f.Add(int64(99), uint8(9))
	f.Fuzz(func(t *testing.T, seed int64, steps uint8) {
		in, err := workload.Synthetic(workload.SyntheticConfig{
			Seed: seed, NumUsers: 60 + int(uint64(seed)%40), NumEvents: 15,
			MaxEventCap: 6, MaxUserCap: 3, MinBids: 2, MaxBids: 5,
		})
		if err != nil {
			t.Fatal(err)
		}
		p, err := NewPlanner(in, Options{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		defer p.Close()
		rng := xrand.New(seed ^ 0x5f5f)
		for step := 0; step < int(steps%8); step++ {
			d := mutateInstance(in, rng)
			res, err := p.Update(d)
			if err != nil {
				t.Fatal(err)
			}
			if err := lp.Verify(p.solver.Problem(), p.sol, 1e-6); err != nil {
				t.Fatalf("step %d: warm certificate: %v", step, err)
			}
			if err := model.Validate(in, res.Arrangement); err != nil {
				t.Fatalf("step %d: infeasible arrangement: %v", step, err)
			}
			cold, err := NewPlanner(in, p.opt)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(res.LPObjective-cold.Objective()) > 1e-8*(1+math.Abs(cold.Objective())) {
				t.Fatalf("step %d: warm %v vs cold %v", step, res.LPObjective, cold.Objective())
			}
			cold.Close()
		}
	})
}
