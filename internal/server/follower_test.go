package server

import (
	"net/http"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"github.com/ebsn/igepa/internal/shard"
	"github.com/ebsn/igepa/internal/wal"
)

func waitFor(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestFollowerServesAndPromotes is the failover acceptance pin: a read
// replica tailing the leader's WAL catches up to an identical state, serves
// reads while refusing writes, and — once the leader is dead — promotes into
// a serving leader that picks up exactly where the log ends.
func TestFollowerServesAndPromotes(t *testing.T) {
	walPath := filepath.Join(t.TempDir(), "wal.log")
	opts := shard.Options{Shards: 4, Batch: 16, Seed: 7, CacheSize: 64}
	base := testInstance(t, 23, 66, 10)

	leader, _, lc := startServer(t, base.Clone(), Config{
		Shard: opts, WALPath: walPath, WALSync: wal.SyncOff,
	})
	follower, _, fc := startServer(t, base.Clone(), Config{
		Shard: opts, WALPath: walPath, Follow: true,
	})

	driveTraffic(t, lc, 66, 10, false)
	if !leader.Drain(10 * time.Second) {
		t.Fatal("leader drain timed out")
	}
	appends := leader.walWriter().Stats().Appends
	want := snapshotServing(leader)

	waitFor(t, 10*time.Second, "follower catch-up", func() bool {
		return follower.fol.stats().Records == appends
	})
	requireSameServing(t, want, follower)

	// At quiescence the replica answers reads exactly like the leader.
	var la, fa struct {
		Sets [][]int `json:"sets"`
	}
	lc.do("GET", "/v1/assignment", nil, &la)
	fc.do("GET", "/v1/assignment", nil, &fa)
	if !reflect.DeepEqual(la.Sets, fa.Sets) {
		t.Fatal("follower assignment dump differs from leader")
	}
	if code := fc.status("GET", "/readyz", nil); code != http.StatusOK {
		t.Fatalf("caught-up follower readyz: %d, want 200", code)
	}

	// Reads only: every mutation bounces with 503 (and checkpointing is the
	// leader's job).
	if code := fc.status("POST", "/v1/bid", bidRequest{User: 10}); code != http.StatusServiceUnavailable {
		t.Fatalf("follower bid: %d, want 503", code)
	}
	if code := fc.status("POST", "/v1/cancel", cancelRequest{User: 0}); code != http.StatusServiceUnavailable {
		t.Fatalf("follower cancel: %d, want 503", code)
	}
	if code := fc.status("POST", "/admin/checkpoint", nil); code != http.StatusConflict {
		t.Fatalf("follower checkpoint: %d, want 409", code)
	}
	var h healthResponse
	fc.do("GET", "/healthz", nil, &h)
	if h.Role != "follower" {
		t.Fatalf("follower role %q", h.Role)
	}

	// Failover: kill the leader, then promote. (Order matters — promotion
	// takes ownership of the log; see DESIGN.md §9.)
	leader.Close()
	if code := fc.status("POST", "/admin/promote", nil); code != http.StatusOK {
		t.Fatalf("promote: %d", code)
	}
	fc.do("GET", "/healthz", nil, &h)
	if h.Role != "leader" {
		t.Fatalf("role after promote: %q", h.Role)
	}
	if code := fc.status("POST", "/admin/promote", nil); code != http.StatusConflict {
		t.Fatalf("second promote: %d, want 409", code)
	}

	// The promoted leader serves writes on top of the tailed state: user 10
	// was held out by driveTraffic and decides normally now.
	if code := fc.status("POST", "/v1/bid", bidRequest{User: 10}); code != http.StatusOK {
		t.Fatalf("bid after promote: %d", code)
	}
	var ar assignmentResponse
	fc.do("GET", "/v1/assignment?user=10", nil, &ar)
	if !ar.Decided {
		t.Fatalf("post-promote bid not decided: %+v", ar)
	}
}

// TestFollowerReadiness pins the liveness/readiness split on the replica
// side: alive but not ready before it has ever observed the log, ready only
// within the lag bound.
func TestFollowerReadiness(t *testing.T) {
	srv, _, c := startServer(t, testInstance(t, 29, 20, 6), Config{
		Shard:    shard.Options{Shards: 2, Batch: 8, Seed: 1},
		WALPath:  filepath.Join(t.TempDir(), "absent.log"),
		Follow:   true,
		LagBytes: 128,
	})
	// The leader's log does not exist yet: alive, not ready.
	if code := c.status("GET", "/healthz", nil); code != http.StatusOK {
		t.Fatalf("healthz: %d, want 200 (liveness is not readiness)", code)
	}
	var rr readyResponse
	if code := c.do("GET", "/readyz", nil, &rr).StatusCode; code != http.StatusServiceUnavailable {
		t.Fatalf("readyz with no log: %d, want 503", code)
	}
	if rr.Ready || rr.Role != "follower" {
		t.Fatalf("readyz payload: %+v", rr)
	}

	// White-box lag arithmetic (the loop is stopped, so the fields are ours).
	f := srv.fol
	f.stopLoop()
	f.mu.Lock()
	f.applied, f.size = 1000, 1000+srv.lagBound()+1
	f.mu.Unlock()
	if st := f.stats(); st.Ready || st.LagBytes != srv.lagBound()+1 {
		t.Fatalf("over the lag bound but ready: %+v", st)
	}
	f.mu.Lock()
	f.size = 1000 + srv.lagBound()
	f.mu.Unlock()
	if st := f.stats(); !st.Ready {
		t.Fatalf("within the lag bound but not ready: %+v", st)
	}
}

// TestFollowerHaltsOnCorruptLog pins the never-replay-a-bad-record contract
// on the tailing path: a corrupt frame parks the replica permanently not
// ready (everything before it applied, nothing after), and promotion of a
// halted replica is refused.
func TestFollowerHaltsOnCorruptLog(t *testing.T) {
	walPath := filepath.Join(t.TempDir(), "wal.log")
	f, err := os.OpenFile(walPath, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	w := wal.NewWriter(f, 0, wal.Options{Sync: wal.SyncOff})
	var ends []int64
	for u := 0; u < 3; u++ {
		off, err := w.Append(wal.Op{Kind: wal.OpBid, TMillis: 1, User: u})
		if err != nil {
			t.Fatal(err)
		}
		ends = append(ends, off)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Flip one payload byte of the second record: CRC mismatch, ErrCorrupt.
	raw, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	raw[ends[0]+8] ^= 0xFF
	if err := os.WriteFile(walPath, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	srv, _, c := startServer(t, testInstance(t, 31, 20, 6), Config{
		Shard:   shard.Options{Shards: 2, Batch: 8, Seed: 1},
		WALPath: walPath,
		Follow:  true,
	})
	waitFor(t, 10*time.Second, "follower halt", func() bool {
		return srv.fol.stats().Failure != ""
	})
	st := srv.fol.stats()
	if st.Records != 1 {
		t.Fatalf("applied %d records before the corrupt frame, want 1", st.Records)
	}
	var rr readyResponse
	if code := c.do("GET", "/readyz", nil, &rr).StatusCode; code != http.StatusServiceUnavailable {
		t.Fatalf("halted follower readyz: %d, want 503", code)
	}
	if !strings.Contains(rr.Reason, "replica halted") {
		t.Fatalf("readyz reason %q", rr.Reason)
	}
	var ar assignmentResponse
	c.do("GET", "/v1/assignment?user=0", nil, &ar)
	if !ar.Decided {
		t.Fatal("record before the corruption was not applied")
	}
	c.do("GET", "/v1/assignment?user=1", nil, &ar)
	if ar.Decided {
		t.Fatal("corrupt record was applied")
	}
	if code := c.status("POST", "/admin/promote", nil); code != http.StatusInternalServerError {
		t.Fatalf("promoting a halted replica: %d, want 500", code)
	}
}
