package main

import (
	"os"
	"path/filepath"
	"testing"

	"github.com/ebsn/igepa"
)

func TestGenerateSyntheticRoundTrips(t *testing.T) {
	out := filepath.Join(t.TempDir(), "synthetic.json")
	if err := run("synthetic", 1, out, 12, 30, 4, 2, 0.3, 0.5, 0.5); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	in, err := igepa.LoadInstance(f)
	if err != nil {
		t.Fatal(err)
	}
	if in.NumEvents() != 12 || in.NumUsers() != 30 {
		t.Errorf("dimensions %dx%d, want 12x30", in.NumEvents(), in.NumUsers())
	}
	// the generated file must be solvable end to end
	arr, err := igepa.Solve(in, "greedy", 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := igepa.Validate(in, arr); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateMeetup(t *testing.T) {
	out := filepath.Join(t.TempDir(), "meetup.json")
	if err := run("meetup", 1, out, 25, 60, 0, 0, 0, 0, 0.5); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	in, err := igepa.LoadInstance(f)
	if err != nil {
		t.Fatal(err)
	}
	if in.NumEvents() != 25 || in.NumUsers() != 60 {
		t.Errorf("dimensions %dx%d, want 25x60", in.NumEvents(), in.NumUsers())
	}
}

func TestGenerateRejectsUnknownKind(t *testing.T) {
	if err := run("bogus", 1, "", 0, 0, 0, 0, 0, 0, 0); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestGenerateBadPath(t *testing.T) {
	if err := run("synthetic", 1, "/nonexistent-dir/x.json", 5, 5, 2, 2, 0.1, 0.1, 0.5); err == nil {
		t.Error("unwritable path accepted")
	}
}
