package modeltest

import (
	"strings"
	"testing"

	"github.com/ebsn/igepa/internal/model"
)

// The oracle itself needs negative tests: a feasibility checker that never
// fires is indistinguishable from a correct planner.

func oracleInstance() *model.Instance {
	return &model.Instance{
		Events: []model.Event{{Capacity: 1}, {Capacity: 2}, {Capacity: 1}},
		Users: []model.User{
			{Capacity: 2, Bids: []int{0, 1, 2}},
			{Capacity: 1, Bids: []int{1}},
		},
		Conflicts: func(v, w int) bool { return (v == 0 && w == 2) || (v == 2 && w == 0) },
		Interest:  func(u, v int) float64 { return 0.5 },
		Beta:      1,
	}
}

func TestOracleAcceptsFeasible(t *testing.T) {
	in := oracleInstance()
	a := &model.Arrangement{Sets: [][]int{{0, 1}, {1}}}
	if err := Check(in, a); err != nil {
		t.Fatalf("feasible arrangement rejected: %v", err)
	}
	RequireFeasible(t, "feasible", in, a)
	RequireWithinBudget(t, "budget", in, a, []int{1, 2, 1})
}

func TestOracleCatchesViolations(t *testing.T) {
	in := oracleInstance()
	cases := []struct {
		name string
		sets [][]int
		want string
	}{
		{"oversubscribed-event", [][]int{{0}, {0}}, "oversubscribed"},
		{"conflicting-events", [][]int{{0, 2}, nil}, "conflicting"},
		{"user-capacity", [][]int{nil, {0, 1}}, "capacity"},
		{"not-bid", [][]int{nil, {0}}, "did not bid"},
		{"unknown-event", [][]int{{9}, nil}, "unknown"},
		{"duplicate-event", [][]int{{1, 1}, nil}, "twice"},
	}
	for _, tc := range cases {
		a := &model.Arrangement{Sets: tc.sets}
		err := Feasible(in, a)
		if tc.name == "oversubscribed-event" {
			// user rows pass; only the capacity count catches it
			err = CheckCapacities(in, a)
		}
		if err == nil {
			t.Errorf("%s: oracle accepted infeasible arrangement %v", tc.name, tc.sets)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
	if err := Feasible(in, &model.Arrangement{Sets: [][]int{nil}}); err == nil {
		t.Error("arrangement with wrong user count accepted")
	}
}

func TestOracleCrossChecksValidate(t *testing.T) {
	// user 1 "attends" event 0 they did bid for... construct a case where the
	// oracle passes but Validate must also run: unsorted sets pass the oracle
	// (it is order-blind) but fail Validate's canonical-form check.
	in := oracleInstance()
	a := &model.Arrangement{Sets: [][]int{{1, 0}, nil}}
	if err := Feasible(in, a); err != nil {
		t.Fatalf("order-blind oracle should accept unsorted set: %v", err)
	}
	if err := Check(in, a); err == nil {
		t.Error("Check must reject what model.Validate rejects (unsorted set)")
	}
}
