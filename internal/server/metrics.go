package server

import (
	"sync/atomic"
	"time"

	"github.com/ebsn/igepa/internal/stats"
)

// reservoirSize bounds the latency sample memory: the percentiles reported
// by /statsz are over a sliding window of the most recent samples.
const reservoirSize = 4096

// reservoir is a fixed-size ring of latency samples safe for concurrent
// writers (shard loops) and readers (/statsz). Both sides are lock-free:
// add is two atomic operations, and a reader snapshots the window with
// atomic loads before sorting its private copy — a slow scraper holding
// /statsz open can never stall a shard loop mid-batch. The cost is a
// benign per-slot race (a reader may catch a sample being overwritten and
// see the newer value); for a quiesced window the reported percentiles are
// bit-identical to the mutex version's, same samples, same nearest-rank
// rule.
type reservoir struct {
	buf   [reservoirSize]atomic.Int64 // nanoseconds
	count atomic.Int64
}

func (r *reservoir) add(d time.Duration) {
	i := r.count.Add(1) - 1
	r.buf[i%reservoirSize].Store(int64(d))
}

// percentiles returns (p50, p99) over the current window; zeros when empty.
// The snapshot-and-sort runs entirely on a private copy.
func (r *reservoir) percentiles() (p50, p99 time.Duration) {
	n := int(r.count.Load())
	if n > reservoirSize {
		n = reservoirSize
	}
	samples := make([]time.Duration, n)
	for i := 0; i < n; i++ {
		samples[i] = time.Duration(r.buf[i].Load())
	}
	ps := stats.DurationPercentiles(samples, 0.50, 0.99)
	return ps[0], ps[1]
}

// metrics is the server's counter set. Everything is atomic so the admin
// surface never takes the serving locks.
type metrics struct {
	arrivals    atomic.Int64 // accepted bid submissions (queued)
	decided     atomic.Int64 // decisions delivered
	granted     atomic.Int64 // decisions with ≥ 1 event
	cancels     atomic.Int64
	rejected    atomic.Int64 // 429: queue full
	conflicts   atomic.Int64 // 409: duplicate submission / bad state
	badRequests atomic.Int64 // 400
	misrouted   atomic.Int64 // 421: cluster shard asked about a user it does not own
	unavailable atomic.Int64 // 503: read-only follower, broken WAL, closing
	leaseErrors atomic.Int64
	walErrors   atomic.Int64 // WAL append/fsync failures (durability lost)

	queueWait reservoir // enqueue → processing start
	decide    reservoir // planner time per arrival
	total     reservoir // enqueue → decision delivered
	walAppend reservoir // WAL append+commit per micro-batch, amortized per decision
}

// Percentiles is a (p50, p99) pair in microseconds, the /statsz currency.
type Percentiles struct {
	P50Micros int64 `json:"p50_us"`
	P99Micros int64 `json:"p99_us"`
}

func (r *reservoir) snapshot() Percentiles {
	p50, p99 := r.percentiles()
	return Percentiles{P50Micros: p50.Microseconds(), P99Micros: p99.Microseconds()}
}
