package shard

import (
	"math"
	"reflect"
	"testing"

	"github.com/ebsn/igepa/internal/core"
)

// TestEngineLiveBoundRebid pins Engine.NoteBidUpdate: after an undecided
// user's bids are replaced in place (the HTTP layer's bid-update path), the
// next UpdateBound must price the new bid set — the bound matches a cold
// planner built on the current instance state.
func TestEngineLiveBoundRebid(t *testing.T) {
	in := testInstance(t, 29, 70, 14)
	e, err := NewEngine(in, Options{Shards: 2, Seed: 1, LiveBound: true})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	// Replace user 0's bids in place, the way the server's stop-the-world
	// bid-update path does: mutate, rebuild caches, notify the engine.
	in.Users[0].Bids = append([]int(nil), in.Users[0].Bids[:1]...)
	in.RebuildBidders()
	in.Weights()
	e.RefreshWeights()
	e.NoteBidUpdate(0)

	got, err := e.UpdateBound()
	if err != nil {
		t.Fatal(err)
	}
	cold, err := core.NewPlanner(in.Clone(), core.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer cold.Close()
	if want := cold.Objective(); math.Abs(got-want) > 1e-6*(1+math.Abs(want)) {
		t.Fatalf("bound after re-bid %v, cold planner on current instance %v", got, want)
	}
}

// TestServeLiveBound pins the live LP bound: enabled, it never changes
// decisions, updates once per batch, and its trace is a valid non-increasing
// upper bound on the remaining opportunity (no cancels in a replay, so
// capacity and bids only shrink).
func TestServeLiveBound(t *testing.T) {
	in := testInstance(t, 11, 200, 30)
	order := arrivalOrder(5, in.NumUsers())
	opt := Options{Shards: 4, Batch: 32, Seed: 9}

	plain, err := Serve(in, order, opt)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Bound != nil {
		t.Fatal("Bound set without Options.LiveBound")
	}

	opt.LiveBound = true
	res, err := Serve(in, order, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Arrangement.Equal(plain.Arrangement) || res.Utility != plain.Utility {
		t.Fatal("live bound changed serving decisions")
	}
	b := res.Bound
	if b == nil {
		t.Fatal("Options.LiveBound produced no Bound")
	}
	if b.Errors != 0 {
		t.Fatalf("bound updates failed %d times", b.Errors)
	}
	if b.Updates != res.Epochs {
		t.Fatalf("bound updated %d times over %d epochs", b.Updates, res.Epochs)
	}
	if len(b.Trace) != b.Updates || len(b.UpdateLatencies) != b.Updates {
		t.Fatalf("trace/latency lengths %d/%d, want %d", len(b.Trace), len(b.UpdateLatencies), b.Updates)
	}
	prev := b.Trace[0]
	for i, v := range b.Trace {
		if v > prev+1e-6 {
			t.Fatalf("bound increased at update %d: %v -> %v (no cancels in a replay)", i, prev, v)
		}
		prev = v
	}
	if b.Remaining != b.Trace[len(b.Trace)-1] {
		t.Fatalf("Remaining %v != last trace entry %v", b.Remaining, b.Trace[len(b.Trace)-1])
	}
	// The remaining bound plus committed utility upper-bounds... at least
	// must stay non-negative and finite.
	if !(b.Remaining >= -1e-9) {
		t.Fatalf("negative remaining bound %v", b.Remaining)
	}
	if b.Solver.WarmSolves == 0 {
		t.Errorf("no bound update took the warm path: %+v", b.Solver)
	}
}

// TestServeLiveBoundWorkerInvariance pins that the bound trace, like the
// decisions, is a pure function of (instance, order, Options).
func TestServeLiveBoundWorkerInvariance(t *testing.T) {
	in := testInstance(t, 13, 160, 24)
	order := arrivalOrder(7, in.NumUsers())
	run := func(workers int) []float64 {
		res, err := Serve(in, order, Options{Shards: 4, Batch: 32, Seed: 3, Workers: workers, LiveBound: true})
		if err != nil {
			t.Fatal(err)
		}
		return res.Bound.Trace
	}
	ref := run(1)
	for _, w := range []int{2, 8} {
		if got := run(w); !reflect.DeepEqual(ref, got) {
			t.Fatalf("bound trace differs between Workers=1 and Workers=%d", w)
		}
	}
}

// TestEngineLiveBoundCancel drives the engine directly: a cancellation
// returns its seats and bids to the shadow problem, so the bound recovers.
func TestEngineLiveBoundCancel(t *testing.T) {
	in := testInstance(t, 17, 80, 15)
	e, err := NewEngine(in, Options{Shards: 2, Seed: 1, LiveBound: true})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	initial, ok := e.LiveBound()
	if !ok {
		t.Fatal("LiveBound not enabled")
	}
	// Serve a user who gets something.
	var served, shard int
	var got []int
	for u := 0; u < in.NumUsers(); u++ {
		si := e.ShardOf(u)
		if set := e.ArriveOn(si, u); len(set) > 0 {
			served, shard, got = u, si, set
			break
		}
	}
	if len(got) == 0 {
		t.Fatal("nobody was granted anything")
	}
	after, err := e.UpdateBound()
	if err != nil {
		t.Fatal(err)
	}
	if after > initial+1e-9 {
		t.Fatalf("bound rose after a grant: %v -> %v", initial, after)
	}
	// Cancel: seats and bids return; the bound must not sit below the
	// post-grant value (the problem only regained slack).
	e.CancelOn(shard, served)
	restored, err := e.UpdateBound()
	if err != nil {
		t.Fatal(err)
	}
	if restored < after-1e-6 {
		t.Fatalf("bound fell after cancel: %v -> %v", after, restored)
	}
	// The restored problem is the original: bounds agree to solver round-off.
	if diff := restored - initial; diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("bound after cancel %v, initially %v", restored, initial)
	}
	st := e.BoundStats()
	if st.Updates != 2 || st.Errors != 0 {
		t.Fatalf("unexpected bound stats %+v", st)
	}
}

// TestLiveBoundDominatesFinalUtility sanity-checks the bound semantics on a
// full replay: at every epoch, committed-so-far + remaining bound must be
// ≥ the final total utility (it upper-bounds the best completion, and the
// serving run is one completion).
func TestLiveBoundDominatesFinalUtility(t *testing.T) {
	in := testInstance(t, 23, 150, 20)
	order := arrivalOrder(2, in.NumUsers())
	batch := 25
	res, err := Serve(in, order, Options{Shards: 2, Batch: batch, Seed: 4, LiveBound: true})
	if err != nil {
		t.Fatal(err)
	}
	// Recompute committed utility per epoch from the final arrangement: a
	// user's grant never changes after their batch (no cancels here).
	committed := 0.0
	wc := in.Weights()
	for e := 0; e < res.Epochs; e++ {
		lo, hi := e*batch, min((e+1)*batch, len(order))
		for _, u := range order[lo:hi] {
			for _, v := range res.Arrangement.Sets[u] {
				committed += wc.Of(u, v)
			}
		}
		if committed+res.Bound.Trace[e] < res.Utility-1e-6 {
			t.Fatalf("epoch %d: committed %v + bound %v < final utility %v",
				e, committed, res.Bound.Trace[e], res.Utility)
		}
	}
}
