package eval

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// RenderChart draws the experiment as an ASCII line chart — the terminal
// rendition of the paper's Fig. 1 plots. Each algorithm gets a glyph; the
// y-axis is utility, the x-axis the experiment's sweep points.
func RenderChart(w io.Writer, t *Table) error {
	const (
		height = 16
		colW   = 12
	)
	e := t.Experiment
	if len(e.Points) == 0 || len(t.Series) == 0 {
		return fmt.Errorf("eval: empty table")
	}
	glyphs := []byte{'*', 'o', '+', 'x', '#', '@'}

	lo, hi := math.Inf(1), math.Inf(-1)
	for _, s := range t.Series {
		for _, c := range s.Cells {
			lo = math.Min(lo, c.Mean)
			hi = math.Max(hi, c.Mean)
		}
	}
	if hi == lo {
		hi = lo + 1
	}
	pad := 0.05 * (hi - lo)
	lo, hi = lo-pad, hi+pad

	width := len(e.Points) * colW
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	rowOf := func(v float64) int {
		f := (v - lo) / (hi - lo)
		r := int(math.Round(f * float64(height-1)))
		return height - 1 - r
	}
	for si, s := range t.Series {
		g := glyphs[si%len(glyphs)]
		prevRow, prevCol := -1, -1
		for p, c := range s.Cells {
			col := p*colW + colW/2
			row := rowOf(c.Mean)
			// connect to the previous point with a sparse line
			if prevCol >= 0 {
				steps := col - prevCol
				for st := 1; st < steps; st += 2 {
					ir := prevRow + (row-prevRow)*st/steps
					ic := prevCol + st
					if grid[ir][ic] == ' ' {
						grid[ir][ic] = '.'
					}
				}
			}
			grid[row][col] = g
			prevRow, prevCol = row, col
		}
	}

	if _, err := fmt.Fprintf(w, "%s — %s\n", e.ID, e.Title); err != nil {
		return err
	}
	for r := 0; r < height; r++ {
		yval := hi - (hi-lo)*float64(r)/float64(height-1)
		if _, err := fmt.Fprintf(w, "%9.1f |%s\n", yval, string(grid[r])); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%9s +%s\n", "", strings.Repeat("-", width)); err != nil {
		return err
	}
	var xrow strings.Builder
	xrow.WriteString(strings.Repeat(" ", 10))
	for _, pt := range e.Points {
		label := pt.Label
		if i := strings.IndexByte(label, '='); i >= 0 {
			label = label[i+1:]
		}
		if len(label) > colW-2 {
			label = label[:colW-2]
		}
		padTotal := colW - len(label)
		left := padTotal / 2
		xrow.WriteString(strings.Repeat(" ", left))
		xrow.WriteString(label)
		xrow.WriteString(strings.Repeat(" ", padTotal-left))
	}
	if _, err := fmt.Fprintln(w, strings.TrimRight(xrow.String(), " ")); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%9s  (x: %s)\n", "", e.XLabel); err != nil {
		return err
	}
	var legend strings.Builder
	legend.WriteString(strings.Repeat(" ", 11))
	for si, s := range t.Series {
		if si > 0 {
			legend.WriteString("   ")
		}
		fmt.Fprintf(&legend, "%c %s", glyphs[si%len(glyphs)], s.Algorithm)
	}
	_, err := fmt.Fprintln(w, legend.String())
	return err
}
