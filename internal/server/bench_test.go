package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/ebsn/igepa/internal/shard"
	"github.com/ebsn/igepa/internal/stats"
)

// BenchmarkServeHTTP measures the serving subsystem end to end over real
// HTTP: a pool of closed-loop clients cycles bid → cancel against a live
// 4-shard server with the admissible-set cache enabled. Each iteration is
// one decided arrival. Reported metrics:
//
//	arrivals/s     sustained decision throughput through the full stack
//	               (HTTP codec, queueing, micro-batch flush, planner)
//	p99_ms         client-observed p99 request latency (includes the
//	               micro-batch coalescing wait)
//	cache_hit_rate admissible-set cache hit rate — the repeat-bid cycles
//	               must keep it above zero
//
// The bench is the source of the BENCH_serve.json CI artifact.
func BenchmarkServeHTTP(b *testing.B) {
	in := testInstance(b, 1, 400, 40)
	srv, err := New(in, Config{
		Shard:         shard.Options{Shards: 4, Batch: 32, Seed: 1, CacheSize: 4096},
		FlushInterval: 200 * time.Microsecond,
		MicroBatch:    8,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	var userCtr atomic.Int64
	var mu sync.Mutex
	var lats []time.Duration

	post := func(hc *http.Client, path string, body any) (int, error) {
		raw, _ := json.Marshal(body)
		resp, err := hc.Post(ts.URL+path, "application/json", bytes.NewReader(raw))
		if err != nil {
			return 0, err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode, nil
	}

	// 8 closed-loop clients per core: micro-batching only coalesces when
	// several requests are in flight at once.
	b.SetParallelism(8)
	b.ResetTimer()
	start := time.Now()
	b.RunParallel(func(pb *testing.PB) {
		hc := &http.Client{}
		u := int(userCtr.Add(1)-1) % in.NumUsers()
		local := make([]time.Duration, 0, 256)
		for pb.Next() {
			t0 := time.Now()
			code, err := post(hc, "/v1/bid", bidRequest{User: u})
			if err != nil {
				b.Error(err)
				return
			}
			switch code {
			case http.StatusOK:
				local = append(local, time.Since(t0))
				post(hc, "/v1/cancel", cancelRequest{User: u})
			case http.StatusTooManyRequests:
				time.Sleep(time.Millisecond) // honor backpressure, then retry
			case http.StatusConflict:
				// user collision (more clients than users on very wide
				// machines): release and move on, don't fail the bench
				post(hc, "/v1/cancel", cancelRequest{User: u})
			default:
				b.Errorf("bid user %d: %d", u, code)
				return
			}
		}
		mu.Lock()
		lats = append(lats, local...)
		mu.Unlock()
	})
	elapsed := time.Since(start)
	b.StopTimer()

	st := srv.Stats()
	if len(lats) > 0 {
		p99 := stats.DurationPercentiles(lats, 0.99)[0]
		b.ReportMetric(float64(p99.Microseconds())/1000, "p99_ms")
	}
	b.ReportMetric(float64(st.Decided)/elapsed.Seconds(), "arrivals/s")
	b.ReportMetric(st.Cache.HitRate, "cache_hit_rate")
	if st.Cache.Hits == 0 && b.N > 4 {
		b.Fatalf("repeat-bid workload produced no cache hits: %+v", st.Cache)
	}
	if testing.Verbose() {
		fmt.Printf("decided=%d cancels=%d rejected=%d cache=%+v\n",
			st.Decided, st.Cancels, st.Rejected, st.Cache)
	}
}
