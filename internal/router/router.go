// Package router is the front tier of the distributed serving deployment:
// one stateless-ish process speaking the same /v1 API as internal/server,
// routing each request to the cluster shard (cmd/igepa-shardd) that owns the
// user and running the lease-renewal arithmetic that a single-process server
// runs in-process (see DESIGN.md §10).
//
// The deployment invariant mirrors the shard package's: a router over S
// single-shard backends is the same machine as one S-shard server, cut along
// the shard boundary. Routing uses the identical shard.ShardOf hash, the
// renewal rounds run the identical leaseRenewer code (via shard.Coordinator)
// over loads and queued demand collected from the backends, and replay-mode
// batch dispatch preserves arrival order per shard — so replaying an arrival
// order through the router is bit-identical to ServeSharded on that order.
//
// Renewal is a two-phase wire protocol: POST /cluster/demand freezes each
// backend (grants stop; loads and queued users are reported), the Coordinator
// computes the new budget table, POST /cluster/lease installs each shard's
// absolute vector and thaws. If an install fails, the coordinator's view and
// the backends' budgets can no longer be proven equal, so the router degrades
// fail-stop: writes answer 503 until the operator restarts the tier. Failures
// before any install (a backend down during prepare) are safe: the round
// aborts, frozen backends thaw, and the next trigger retries.
package router

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/ebsn/igepa/internal/model"
	"github.com/ebsn/igepa/internal/server"
	"github.com/ebsn/igepa/internal/shard"
)

// Defaults for Config zero values.
const (
	// DefaultTimeout bounds one backend HTTP call. It must cover a wait:true
	// bid parked behind a micro-batch deadline and a renewal freeze, and the
	// 10s drain barrier a fanned-out /admin/drain can hit.
	DefaultTimeout = 30 * time.Second
	// DefaultRetries is how many times a backend call is retried on a
	// transport error (HTTP status codes are never retried blindly).
	DefaultRetries = 2
)

// Config parameterizes New.
type Config struct {
	// Backends are the shard process base URLs, indexed by shard: Backends[i]
	// must host cluster shard i. Routing, renewal, and migration all key on
	// this order.
	Backends []string
	// Shard carries the cluster-wide planner options. Shards must equal
	// len(Backends); Seed must match every backend (it drives the user→shard
	// hash on both sides); Batch is B, the renewal period; Lease is the
	// renewal policy the Coordinator runs.
	Shard shard.Options
	// Replay switches the router to the deterministic dispatcher: one global
	// queue, flush strictly every Shard.Batch arrivals, renewal before every
	// batch but the first — bit-identical to shard.Serve on the same order.
	Replay bool
	// Timeout bounds each backend HTTP call (0 = DefaultTimeout).
	Timeout time.Duration
	// Retries is the transport-error retry budget per call (0 = DefaultRetries;
	// negative = no retries).
	Retries int
	// QueueDepth bounds the replay queue; full answers 429
	// (0 = max(4×Shard.Batch, 256)).
	QueueDepth int
	// RetryAfter is the backpressure hint on 429 (0 = 1s).
	RetryAfter time.Duration
	// DisableMetrics turns off the obs registry and the /metrics and
	// /cluster/metrics endpoints (benchmark baseline only).
	DisableMetrics bool
}

// user lifecycle states (replay mode's router-side duplicate detection,
// mirroring internal/server's).
const (
	stateNone uint8 = iota
	stateQueued
	stateDecided
	stateCancelled
)

// backend is one shard process: its base URL and a dedicated client whose
// transport keeps a connection pool to that process alone.
type backend struct {
	base   string
	client *http.Client
}

type metrics struct {
	arrivals    atomic.Int64
	decided     atomic.Int64
	granted     atomic.Int64
	cancels     atomic.Int64
	rejected    atomic.Int64
	conflicts   atomic.Int64
	badRequests atomic.Int64
	misrouted   atomic.Int64 // 421s seen from backends (stale routing races)
	renewErrors atomic.Int64 // aborted renewal rounds (safe: retried)
	epochs      atomic.Int64 // replay batches dispatched
}

// Router is the front-tier process. Construct with New, verify the cluster
// with CheckBackends, install Handler in an http.Server, Close when done.
type Router struct {
	cfg      Config
	in       *model.Instance
	s, b     int
	backends []backend
	coord    *shard.Coordinator
	mux      *http.ServeMux

	// routeMu guards the migration override table; ownerOf consults it
	// before falling back to the stateless hash.
	routeMu  sync.RWMutex
	override map[int]int

	// renewMu serializes renewal rounds and migrations — both rewrite the
	// coordinator's budget table. sinceRenew counts accepted arrivals since
	// the last round (live mode's trigger).
	renewMu    sync.Mutex
	sinceRenew atomic.Int64

	// degraded is the fail-stop latch: once the coordinator's budget view
	// and the backends' can no longer be proven equal (a failed install or
	// half-applied migration), writes answer 503 forever.
	degraded atomic.Bool
	degMu    sync.Mutex
	degWhy   string

	// replay mode: the global arrival queue, its dispatcher, and the
	// router-side user lifecycle (duplicate detection without a round-trip).
	q       *rqueue
	wg      sync.WaitGroup
	stateMu sync.Mutex
	state   []uint8

	closed  atomic.Bool
	started time.Time
	m       metrics

	// obs is the Prometheus-exposition registry behind /metrics and the
	// /cluster/metrics fan-in (nil under Config.DisableMetrics; every
	// method is a nil-safe no-op).
	obs *routerObs
}

// New validates the configuration and builds the router (coordinator, per-
// backend connection pools, and in replay mode the dispatcher). It does not
// touch the network; call CheckBackends to verify the cluster shape.
func New(in *model.Instance, cfg Config) (*Router, error) {
	if len(cfg.Backends) == 0 {
		return nil, &shard.ConfigError{Field: "Backends", Reason: "no backends"}
	}
	opt := cfg.Shard
	if opt.Shards == 0 {
		opt.Shards = len(cfg.Backends)
	}
	if opt.Shards != len(cfg.Backends) {
		return nil, &shard.ConfigError{Field: "Shards", Reason: fmt.Sprintf(
			"Shards = %d but %d backends", opt.Shards, len(cfg.Backends))}
	}
	coord, err := shard.NewCoordinator(in, opt)
	if err != nil {
		return nil, err
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = DefaultTimeout
	}
	if cfg.Retries == 0 {
		cfg.Retries = DefaultRetries
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = time.Second
	}
	b := opt.Batch
	if b <= 0 {
		b = shard.DefaultBatch
	}
	rt := &Router{
		cfg: cfg, in: in, s: opt.Shards, b: b,
		coord:    coord,
		override: make(map[int]int),
		started:  time.Now(),
	}
	rt.cfg.Shard = opt
	for _, base := range cfg.Backends {
		rt.backends = append(rt.backends, backend{
			base: strings.TrimRight(base, "/"),
			client: &http.Client{
				Timeout: cfg.Timeout,
				Transport: &http.Transport{
					MaxIdleConns:        64,
					MaxIdleConnsPerHost: 64,
					IdleConnTimeout:     90 * time.Second,
				},
			},
		})
	}
	if cfg.Replay {
		depth := cfg.QueueDepth
		if depth <= 0 {
			depth = 4 * b
			if depth < 256 {
				depth = 256
			}
		}
		rt.q = newRQueue(depth)
		rt.state = make([]uint8, in.NumUsers())
		rt.wg.Add(1)
		go rt.dispatchLoop()
	}

	if !cfg.DisableMetrics {
		rt.obs = newRouterObs(rt)
	}

	rt.mux = http.NewServeMux()
	rt.mux.HandleFunc("/v1/bid", rt.handleBid)
	rt.mux.HandleFunc("/v1/cancel", rt.handleCancel)
	rt.mux.HandleFunc("/v1/assignment", rt.handleAssignment)
	rt.mux.HandleFunc("/v1/load", rt.handleLoad)
	rt.mux.HandleFunc("/healthz", rt.handleHealthz)
	rt.mux.HandleFunc("/readyz", rt.handleReadyz)
	rt.mux.HandleFunc("/statsz", rt.handleStatsz)
	if rt.obs != nil {
		rt.mux.HandleFunc("/metrics", rt.handleMetrics)
		rt.mux.HandleFunc("/cluster/metrics", rt.handleClusterMetrics)
	}
	rt.mux.HandleFunc("/admin/drain", rt.handleDrain)
	rt.mux.HandleFunc("/admin/migrate", rt.handleMigrate)
	return rt, nil
}

// Handler returns the router's HTTP handler.
func (rt *Router) Handler() http.Handler { return rt.mux }

// ServeHTTP implements http.Handler.
func (rt *Router) ServeHTTP(w http.ResponseWriter, r *http.Request) { rt.mux.ServeHTTP(w, r) }

// Close stops the dispatcher (replay mode), releasing every parked submitter
// with a shutdown reply, and frees the coordinator. It does not touch the
// backends — they are separate processes with their own lifecycles.
func (rt *Router) Close() {
	if !rt.closed.CompareAndSwap(false, true) {
		return
	}
	if rt.q != nil {
		rt.q.close()
		rt.wg.Wait()
		for _, r := range rt.q.takeAll() {
			if r.reply != nil {
				r.reply <- rrep{shutdown: true}
			}
		}
	}
	rt.coord.Close()
	for i := range rt.backends {
		if tr, ok := rt.backends[i].client.Transport.(*http.Transport); ok {
			tr.CloseIdleConnections()
		}
	}
}

// CheckBackends probes every backend's /healthz and verifies the cluster
// shape: backend i must host cluster shard i of an S-wide deployment over the
// same instance. Run it at startup (cmd/igepa-router retries until the
// cluster assembles) and before trusting a reconfigured backend list.
func (rt *Router) CheckBackends() error {
	for i := range rt.backends {
		var h struct {
			Status    string              `json:"status"`
			NumUsers  int                 `json:"num_users"`
			NumEvents int                 `json:"num_events"`
			Cluster   *server.ClusterInfo `json:"cluster"`
		}
		if _, err := rt.getJSON(i, "/healthz", &h); err != nil {
			return fmt.Errorf("router: backend %d (%s): %w", i, rt.backends[i].base, err)
		}
		switch {
		case h.Cluster == nil:
			return fmt.Errorf("router: backend %d (%s) is not a cluster shard", i, rt.backends[i].base)
		case h.Cluster.Shards != rt.s:
			return fmt.Errorf("router: backend %d reports a %d-shard cluster, router has %d backends",
				i, h.Cluster.Shards, rt.s)
		case h.Cluster.Index != i:
			return fmt.Errorf("router: backend %d (%s) hosts shard %d; backend order must match shard index",
				i, rt.backends[i].base, h.Cluster.Index)
		case h.NumUsers != rt.in.NumUsers() || h.NumEvents != rt.in.NumEvents():
			return fmt.Errorf("router: backend %d serves a %d-user/%d-event instance, router has %d/%d",
				i, h.NumUsers, h.NumEvents, rt.in.NumUsers(), rt.in.NumEvents())
		}
	}
	return nil
}

// ownerOf resolves the backend serving user u: the migration override when
// one exists, else the stateless hash every tier shares.
func (rt *Router) ownerOf(u int) int {
	rt.routeMu.RLock()
	o, ok := rt.override[u]
	rt.routeMu.RUnlock()
	if ok {
		return o
	}
	return shard.ShardOf(rt.cfg.Shard.Seed, u, rt.s)
}

// degrade latches the fail-stop state with the first reason.
func (rt *Router) degrade(why string) {
	rt.degMu.Lock()
	if !rt.degraded.Load() {
		rt.degWhy = why
		rt.degraded.Store(true)
	}
	rt.degMu.Unlock()
}

func (rt *Router) degradedReason() string {
	rt.degMu.Lock()
	defer rt.degMu.Unlock()
	return rt.degWhy
}

// writable gates the mutating handlers: a closing or degraded router must
// not accept writes it cannot route consistently.
func (rt *Router) writable(w http.ResponseWriter) bool {
	if rt.closed.Load() {
		httpError(w, http.StatusServiceUnavailable, "router closing")
		return false
	}
	if rt.degraded.Load() {
		httpError(w, http.StatusServiceUnavailable, "router degraded: "+rt.degradedReason())
		return false
	}
	return true
}

// --- backend HTTP plumbing --------------------------------------------------

// statusError is a non-2xx backend answer carried as an error, preserving
// enough to propagate (status, message, backpressure hint).
type statusError struct {
	status     int
	msg        string
	retryAfter string
}

func (e *statusError) Error() string { return fmt.Sprintf("HTTP %d: %s", e.status, e.msg) }

// postJSON calls POST base+path on backend si with a JSON body, decoding a
// 2xx answer into resp (when non-nil). Transport errors are retried up to
// cfg.Retries times; HTTP statuses never are (the caller knows which calls
// are idempotent). Non-2xx answers come back as *statusError.
func (rt *Router) postJSON(si int, path string, req, resp any) (int, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return 0, err
	}
	return rt.roundTrip(si, http.MethodPost, path, body, resp)
}

// getJSON calls GET base+path on backend si with transport retries.
func (rt *Router) getJSON(si int, path string, resp any) (int, error) {
	return rt.roundTrip(si, http.MethodGet, path, nil, resp)
}

func (rt *Router) roundTrip(si int, method, path string, body []byte, resp any) (int, error) {
	b := &rt.backends[si]
	var lastErr error
	for attempt := 0; attempt <= rt.cfg.Retries; attempt++ {
		var rdr io.Reader
		if body != nil {
			rdr = bytes.NewReader(body)
		}
		req, err := http.NewRequest(method, b.base+path, rdr)
		if err != nil {
			return 0, err
		}
		if body != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		t0 := time.Now()
		res, err := b.client.Do(req)
		if err != nil {
			rt.obs.observeBackend(si, 0, true)
			lastErr = err
			continue
		}
		payload, err := io.ReadAll(res.Body)
		res.Body.Close()
		if err != nil {
			rt.obs.observeBackend(si, 0, true)
			lastErr = err
			continue
		}
		rt.obs.observeBackend(si, time.Since(t0), res.StatusCode >= 500)
		if res.StatusCode < 200 || res.StatusCode > 299 {
			var e struct {
				Error string `json:"error"`
			}
			_ = json.Unmarshal(payload, &e)
			if e.Error == "" {
				e.Error = strings.TrimSpace(string(payload))
			}
			return res.StatusCode, &statusError{
				status: res.StatusCode, msg: e.Error, retryAfter: res.Header.Get("Retry-After"),
			}
		}
		if resp != nil {
			if err := json.Unmarshal(payload, resp); err != nil {
				return res.StatusCode, fmt.Errorf("decoding %s: %w", path, err)
			}
		}
		return res.StatusCode, nil
	}
	return 0, fmt.Errorf("backend %d (%s): %w", si, b.base, lastErr)
}

// forward relays a client request body to backend si verbatim and copies the
// backend's status, Retry-After, and body back — the live-mode proxy path.
// Returns the backend status (0 on transport failure after retries).
func (rt *Router) forward(w http.ResponseWriter, si int, path string, body []byte) int {
	b := &rt.backends[si]
	var lastErr error
	for attempt := 0; attempt <= rt.cfg.Retries; attempt++ {
		req, err := http.NewRequest(http.MethodPost, b.base+path, bytes.NewReader(body))
		if err != nil {
			httpError(w, http.StatusInternalServerError, err.Error())
			return http.StatusInternalServerError
		}
		req.Header.Set("Content-Type", "application/json")
		t0 := time.Now()
		res, err := b.client.Do(req)
		if err != nil {
			rt.obs.observeBackend(si, 0, true)
			lastErr = err
			continue
		}
		payload, err := io.ReadAll(res.Body)
		res.Body.Close()
		if err != nil {
			rt.obs.observeBackend(si, 0, true)
			lastErr = err
			continue
		}
		rt.obs.observeBackend(si, time.Since(t0), res.StatusCode >= 500)
		if res.StatusCode == http.StatusMisdirectedRequest {
			// Caller handles re-resolution; don't write yet.
			return res.StatusCode
		}
		if ra := res.Header.Get("Retry-After"); ra != "" {
			w.Header().Set("Retry-After", ra)
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(res.StatusCode)
		_, _ = w.Write(payload)
		return res.StatusCode
	}
	httpError(w, http.StatusBadGateway, fmt.Sprintf("backend %d unreachable: %v", si, lastErr))
	return 0
}

// --- /v1 handlers -----------------------------------------------------------

type bidRequest struct {
	User int   `json:"user"`
	Bids []int `json:"bids,omitempty"`
	Wait *bool `json:"wait,omitempty"`
}

type bidResponse struct {
	User   int   `json:"user"`
	Events []int `json:"events"`
	Epoch  int   `json:"epoch"`
	Queued bool  `json:"queued,omitempty"`
}

func (rt *Router) handleBid(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	if !rt.writable(w) {
		return
	}
	body, err := io.ReadAll(r.Body)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	var req bidRequest
	if err := json.Unmarshal(body, &req); err != nil {
		rt.m.badRequests.Add(1)
		httpError(w, http.StatusBadRequest, "bad JSON: "+err.Error())
		return
	}
	if req.User < 0 || req.User >= rt.in.NumUsers() {
		rt.m.badRequests.Add(1)
		httpError(w, http.StatusBadRequest, fmt.Sprintf("user %d outside [0,%d)", req.User, rt.in.NumUsers()))
		return
	}
	if rt.cfg.Replay {
		rt.replayBid(w, &req)
		return
	}
	// Live: proxy to the owner; the backend does its own validation, queuing
	// and duplicate detection. A 421 means our routing raced a migration —
	// re-resolve once and retry.
	status := rt.forward(w, rt.ownerOf(req.User), "/v1/bid", body)
	if status == http.StatusMisdirectedRequest {
		rt.m.misrouted.Add(1)
		status = rt.forward(w, rt.ownerOf(req.User), "/v1/bid", body)
		if status == http.StatusMisdirectedRequest {
			httpError(w, http.StatusMisdirectedRequest,
				fmt.Sprintf("no backend owns user %d (routing table inconsistent)", req.User))
			return
		}
	}
	if status == http.StatusOK || status == http.StatusAccepted {
		rt.m.arrivals.Add(1)
		if rt.sinceRenew.Add(1) >= int64(rt.b) {
			go rt.tryRenew()
		}
	}
}

func (rt *Router) handleCancel(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	if !rt.writable(w) {
		return
	}
	body, err := io.ReadAll(r.Body)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	var req struct {
		User int `json:"user"`
	}
	if err := json.Unmarshal(body, &req); err != nil {
		rt.m.badRequests.Add(1)
		httpError(w, http.StatusBadRequest, "bad JSON: "+err.Error())
		return
	}
	if req.User < 0 || req.User >= rt.in.NumUsers() {
		rt.m.badRequests.Add(1)
		httpError(w, http.StatusBadRequest, fmt.Sprintf("user %d outside [0,%d)", req.User, rt.in.NumUsers()))
		return
	}
	if rt.cfg.Replay {
		// The router's lifecycle view is authoritative in replay mode: the
		// user must be decided (not queued behind the current batch).
		rt.stateMu.Lock()
		st := rt.state[req.User]
		rt.stateMu.Unlock()
		if st != stateDecided {
			rt.m.conflicts.Add(1)
			httpError(w, http.StatusConflict, fmt.Sprintf("user %d has no active assignment", req.User))
			return
		}
	}
	status := rt.forward(w, rt.ownerOf(req.User), "/v1/cancel", body)
	if status == http.StatusMisdirectedRequest {
		rt.m.misrouted.Add(1)
		status = rt.forward(w, rt.ownerOf(req.User), "/v1/cancel", body)
	}
	if status == http.StatusOK {
		rt.m.cancels.Add(1)
		if rt.cfg.Replay {
			rt.stateMu.Lock()
			rt.state[req.User] = stateCancelled
			rt.stateMu.Unlock()
		}
	}
}

func (rt *Router) handleAssignment(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	q := r.URL.Query().Get("user")
	if q == "" {
		rt.handleAssignmentDump(w)
		return
	}
	u, err := strconv.Atoi(q)
	if err != nil || u < 0 || u >= rt.in.NumUsers() {
		rt.m.badRequests.Add(1)
		httpError(w, http.StatusBadRequest, "bad user")
		return
	}
	var resp json.RawMessage
	status, gerr := rt.getJSON(rt.ownerOf(u), "/v1/assignment?user="+q, &resp)
	if status == http.StatusMisdirectedRequest {
		rt.m.misrouted.Add(1)
		status, gerr = rt.getJSON(rt.ownerOf(u), "/v1/assignment?user="+q, &resp)
	}
	if gerr != nil {
		propagate(w, gerr)
		return
	}
	writeRaw(w, status, resp)
}

// handleAssignmentDump merges the full arrangement: each backend dumps its
// instance-wide set array (non-owned users empty), and the router takes each
// user's row from their owner.
func (rt *Router) handleAssignmentDump(w http.ResponseWriter) {
	dumps := make([][][]int, rt.s)
	errs := make([]error, rt.s)
	var wg sync.WaitGroup
	for si := 0; si < rt.s; si++ {
		wg.Add(1)
		go func(si int) {
			defer wg.Done()
			var resp struct {
				Sets [][]int `json:"sets"`
			}
			_, errs[si] = rt.getJSON(si, "/v1/assignment", &resp)
			dumps[si] = resp.Sets
		}(si)
	}
	wg.Wait()
	for si, err := range errs {
		if err != nil {
			propagate(w, fmt.Errorf("backend %d: %w", si, err))
			return
		}
	}
	sets := make([][]int, rt.in.NumUsers())
	for u := range sets {
		o := rt.ownerOf(u)
		if u < len(dumps[o]) && dumps[o][u] != nil {
			sets[u] = dumps[o][u]
		} else {
			sets[u] = []int{}
		}
	}
	writeJSON(w, http.StatusOK, struct {
		Sets [][]int `json:"sets"`
	}{Sets: sets})
}

type loadRow struct {
	Event    int `json:"event"`
	Load     int `json:"load"`
	Capacity int `json:"capacity"`
}

// handleLoad sums per-event seat consumption across every backend — capacity
// is a property of the instance, loads are the shards' local grants.
func (rt *Router) handleLoad(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	nv := rt.in.NumEvents()
	totals := make([]int, nv)
	rows := make([][]loadRow, rt.s)
	errs := make([]error, rt.s)
	var wg sync.WaitGroup
	for si := 0; si < rt.s; si++ {
		wg.Add(1)
		go func(si int) {
			defer wg.Done()
			_, errs[si] = rt.getJSON(si, "/v1/load", &rows[si])
		}(si)
	}
	wg.Wait()
	for si, err := range errs {
		if err != nil {
			propagate(w, fmt.Errorf("backend %d: %w", si, err))
			return
		}
		for _, row := range rows[si] {
			if row.Event >= 0 && row.Event < nv {
				totals[row.Event] += row.Load
			}
		}
	}
	q := r.URL.Query().Get("event")
	if q == "" {
		out := make([]loadRow, nv)
		for v := range out {
			out[v] = loadRow{Event: v, Load: totals[v], Capacity: rt.in.Events[v].Capacity}
		}
		writeJSON(w, http.StatusOK, out)
		return
	}
	v, err := strconv.Atoi(q)
	if err != nil || v < 0 || v >= nv {
		rt.m.badRequests.Add(1)
		httpError(w, http.StatusBadRequest, "bad event")
		return
	}
	writeJSON(w, http.StatusOK, loadRow{Event: v, Load: totals[v], Capacity: rt.in.Events[v].Capacity})
}

// --- admin surface ----------------------------------------------------------

// handleHealthz reports router liveness in the same shape as a server's
// /healthz, so tooling (cmd/igepa-loadgen) points at either tier unchanged.
func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status, code := "ok", http.StatusOK
	if rt.degraded.Load() {
		status, code = "degraded: "+rt.degradedReason(), http.StatusInternalServerError
	}
	if rt.closed.Load() {
		status, code = "closing", http.StatusServiceUnavailable
	}
	mode := "live"
	if rt.cfg.Replay {
		mode = "replay"
	}
	writeJSON(w, code, struct {
		Status    string `json:"status"`
		Mode      string `json:"mode"`
		Role      string `json:"role"`
		UptimeMS  int64  `json:"uptime_ms"`
		Shards    int    `json:"shards"`
		Batch     int    `json:"batch"`
		NumUsers  int    `json:"num_users"`
		NumEvents int    `json:"num_events"`
	}{
		Status: status, Mode: mode, Role: "router",
		UptimeMS: time.Since(rt.started).Milliseconds(),
		Shards:   rt.s, Batch: rt.b,
		NumUsers: rt.in.NumUsers(), NumEvents: rt.in.NumEvents(),
	})
}

// handleReadyz: the tier should receive traffic only when every backend is
// ready and the router itself is neither degraded nor closing.
func (rt *Router) handleReadyz(w http.ResponseWriter, r *http.Request) {
	type resp struct {
		Ready    bool     `json:"ready"`
		Role     string   `json:"role"`
		Reason   string   `json:"reason,omitempty"`
		Backends []bool   `json:"backends"`
		Reasons  []string `json:"backend_reasons,omitempty"`
	}
	out := resp{Role: "router", Backends: make([]bool, rt.s), Reasons: make([]string, rt.s)}
	var wg sync.WaitGroup
	for si := 0; si < rt.s; si++ {
		wg.Add(1)
		go func(si int) {
			defer wg.Done()
			var br struct {
				Ready  bool   `json:"ready"`
				Reason string `json:"reason"`
			}
			status, err := rt.getJSON(si, "/readyz", &br)
			if err != nil && status == 0 {
				out.Reasons[si] = "unreachable"
				return
			}
			// /readyz answers 503 with a body when not ready; decode both.
			if se, ok := err.(*statusError); ok {
				out.Reasons[si] = se.msg
				return
			}
			out.Backends[si] = br.Ready
			out.Reasons[si] = br.Reason
		}(si)
	}
	wg.Wait()
	out.Ready = !rt.closed.Load() && !rt.degraded.Load()
	switch {
	case rt.closed.Load():
		out.Reason = "closing"
	case rt.degraded.Load():
		out.Reason = "degraded: " + rt.degradedReason()
	}
	for si, ok := range out.Backends {
		if !ok {
			out.Ready = false
			if out.Reason == "" {
				out.Reason = fmt.Sprintf("backend %d not ready: %s", si, out.Reasons[si])
			}
		}
	}
	code := http.StatusOK
	if !out.Ready {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, out)
}

// BackendStats is one backend's row in the router's /statsz.
type BackendStats struct {
	Index    int     `json:"index"`
	Utility  float64 `json:"utility"`
	Arrivals int64   `json:"arrivals"`
	Decided  int64   `json:"decided"`
	Renewals int     `json:"lease_renewals"`
	Moved    int     `json:"moved_seats"`
	Error    string  `json:"error,omitempty"`
}

// Stats is the router's /statsz payload: its own counters, the coordinator's
// renewal accounting (the cluster's source of truth for Renewals/MovedSeats),
// and the per-backend utility rows summed into the cluster utility.
type Stats struct {
	Mode           string         `json:"mode"`
	Role           string         `json:"role"`
	UptimeMS       int64          `json:"uptime_ms"`
	Shards         int            `json:"shards"`
	Batch          int            `json:"batch"`
	Arrivals       int64          `json:"arrivals"`
	Decided        int64          `json:"decided"`
	Granted        int64          `json:"granted"`
	Cancels        int64          `json:"cancels"`
	Rejected       int64          `json:"rejected_429"`
	Conflicts      int64          `json:"conflict_409"`
	BadRequests    int64          `json:"bad_request_400"`
	Misrouted      int64          `json:"misrouted_421"`
	RenewErrors    int64          `json:"renew_errors"`
	Epochs         int64          `json:"epochs"`
	LeaseRenewals  int            `json:"lease_renewals"`
	MovedSeats     int            `json:"moved_seats"`
	QueueDepth     int            `json:"queue_depth"`
	Degraded       bool           `json:"degraded"`
	DegradedReason string         `json:"degraded_reason,omitempty"`
	Utility        float64        `json:"utility"`
	PerBackend     []BackendStats `json:"per_backend"`
}

// Stats assembles the admin snapshot (also served as /statsz).
func (rt *Router) Stats() Stats {
	mode := "live"
	if rt.cfg.Replay {
		mode = "replay"
	}
	st := Stats{
		Mode: mode, Role: "router",
		UptimeMS:       time.Since(rt.started).Milliseconds(),
		Shards:         rt.s,
		Batch:          rt.b,
		Arrivals:       rt.m.arrivals.Load(),
		Decided:        rt.m.decided.Load(),
		Granted:        rt.m.granted.Load(),
		Cancels:        rt.m.cancels.Load(),
		Rejected:       rt.m.rejected.Load(),
		Conflicts:      rt.m.conflicts.Load(),
		BadRequests:    rt.m.badRequests.Load(),
		Misrouted:      rt.m.misrouted.Load(),
		RenewErrors:    rt.m.renewErrors.Load(),
		Epochs:         rt.m.epochs.Load(),
		Degraded:       rt.degraded.Load(),
		DegradedReason: rt.degradedReason(),
		PerBackend:     make([]BackendStats, rt.s),
	}
	rt.renewMu.Lock()
	st.LeaseRenewals = rt.coord.Renewals()
	st.MovedSeats = rt.coord.MovedSeats()
	rt.renewMu.Unlock()
	if rt.q != nil {
		st.QueueDepth = rt.q.depth()
	}
	var wg sync.WaitGroup
	for si := 0; si < rt.s; si++ {
		wg.Add(1)
		go func(si int) {
			defer wg.Done()
			var bs server.Stats
			if _, err := rt.getJSON(si, "/statsz", &bs); err != nil {
				st.PerBackend[si] = BackendStats{Index: si, Error: err.Error()}
				return
			}
			st.PerBackend[si] = BackendStats{
				Index: si, Utility: bs.Utility,
				Arrivals: bs.Arrivals, Decided: bs.Decided,
				Renewals: bs.LeaseRenewals, Moved: bs.MovedSeats,
			}
		}(si)
	}
	wg.Wait()
	for si := range st.PerBackend {
		st.Utility += st.PerBackend[si].Utility
	}
	return st
}

func (rt *Router) handleStatsz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, rt.Stats())
}

// handleDrain flushes the router's partial replay batch, then fans the drain
// out to every backend — the end-of-stream barrier for the whole cluster.
func (rt *Router) handleDrain(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	drained := rt.Drain(10 * time.Second)
	var wg sync.WaitGroup
	oks := make([]bool, rt.s)
	for si := 0; si < rt.s; si++ {
		wg.Add(1)
		go func(si int) {
			defer wg.Done()
			var resp struct {
				Drained bool `json:"drained"`
			}
			if _, err := rt.postJSON(si, "/admin/drain", struct{}{}, &resp); err == nil {
				oks[si] = resp.Drained
			}
		}(si)
	}
	wg.Wait()
	for _, ok := range oks {
		drained = drained && ok
	}
	writeJSON(w, http.StatusOK, struct {
		Drained bool  `json:"drained"`
		Decided int64 `json:"decided"`
	}{Drained: drained, Decided: rt.m.decided.Load()})
}

// Drain blocks until the router's own replay queue is empty and idle (no-op
// in live mode, where the backends hold the queues).
func (rt *Router) Drain(timeout time.Duration) bool {
	if rt.q == nil {
		return true
	}
	deadline := time.Now().Add(timeout)
	for {
		if rt.q.idle() {
			return true
		}
		rt.q.drain()
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(200 * time.Microsecond)
	}
}

// --- helpers ----------------------------------------------------------------

// propagate maps a backend error onto the client response, preserving the
// status and backpressure hint when the error carries them.
func propagate(w http.ResponseWriter, err error) {
	if se, ok := err.(*statusError); ok {
		if se.retryAfter != "" {
			w.Header().Set("Retry-After", se.retryAfter)
		}
		httpError(w, se.status, se.msg)
		return
	}
	httpError(w, http.StatusBadGateway, err.Error())
}

func writeRaw(w http.ResponseWriter, code int, raw json.RawMessage) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_, _ = w.Write(raw)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, struct {
		Error string `json:"error"`
	}{Error: msg})
}
