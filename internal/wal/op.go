package wal

import (
	"encoding/json"
	"fmt"
)

// Op kinds. The payload format extends the workload.Arrivals JSONL codec:
// a bid record is the arrival line {"t_ms":…,"user":…} plus the "op" tag, so
// a WAL of pure bid traffic is an arrival log with framing.
const (
	// OpBid is one accepted live-mode arrival, applied immediately on the
	// user's shard (Engine.ArriveOn).
	OpBid = "bid"
	// OpBatch is one replay-mode dispatch: Users in order through
	// Engine.DispatchBatch, preceded by a lease renewal fed with Users when
	// the engine has prior epochs and more than one shard — the Serve
	// schedule, reproduced from state rather than logged.
	OpBatch = "batch"
	// OpRenew is a live-mode lease renewal; Users is the queued-demand
	// snapshot the renewer was fed.
	OpRenew = "renew"
	// OpCancel revokes the user's assignment (Engine.CancelOn).
	OpCancel = "cancel"
	// OpSetBids replaces the user's bid set before their decision.
	OpSetBids = "set_bids"
	// OpLease installs a coordinator-computed budget vector on a cluster
	// shard (Engine.InstallLease) — the durable record of one wire renewal.
	OpLease = "lease"
	// OpExport removes Users from a cluster shard for migration
	// (Engine.ExportUsers).
	OpExport = "export"
	// OpAdopt installs a migrated user range on a cluster shard
	// (Engine.AdoptUsers): Users with their Sets, plus the serving layer's
	// lifecycle States so recovery reproduces the handoff exactly.
	OpAdopt = "adopt"
)

// Op is one logical serving operation — the unit of WAL replay.
type Op struct {
	Kind    string `json:"op"`
	TMillis int64  `json:"t_ms,omitempty"`
	User    int    `json:"user,omitempty"`
	// Users is the dispatch list (OpBatch) or the renewal demand snapshot
	// (OpRenew).
	Users []int `json:"users,omitempty"`
	// Bids is the replacement bid set (OpSetBids).
	Bids []int `json:"bids,omitempty"`
	// Budget is the installed lease vector (OpLease).
	Budget []int `json:"budget,omitempty"`
	// Sets[i] is Users[i]'s migrated assignment (OpAdopt).
	Sets [][]int `json:"sets,omitempty"`
	// States[i] is Users[i]'s serving-layer lifecycle state (OpAdopt); the
	// shard layer ignores it.
	States []uint8 `json:"states,omitempty"`
}

// Encode returns the op's JSON payload.
func (op Op) Encode() []byte {
	b, err := json.Marshal(op)
	if err != nil {
		// Op has no marshal-failing field types.
		panic(err)
	}
	return b
}

// DecodeOp parses and validates one payload. Structural problems (unknown
// kind, negative users) are reported as errors, never applied.
func DecodeOp(payload []byte) (Op, error) {
	var op Op
	if err := json.Unmarshal(payload, &op); err != nil {
		return op, fmt.Errorf("wal: decoding op: %w", err)
	}
	switch op.Kind {
	case OpBid, OpCancel:
		if op.User < 0 {
			return op, fmt.Errorf("wal: %s op with negative user %d", op.Kind, op.User)
		}
	case OpBatch, OpRenew, OpExport:
		for _, u := range op.Users {
			if u < 0 {
				return op, fmt.Errorf("wal: %s op with negative user %d", op.Kind, u)
			}
		}
	case OpLease:
		for _, b := range op.Budget {
			if b < 0 {
				return op, fmt.Errorf("wal: lease op with negative budget %d", b)
			}
		}
	case OpAdopt:
		if len(op.Sets) != len(op.Users) || (op.States != nil && len(op.States) != len(op.Users)) {
			return op, fmt.Errorf("wal: adopt op with %d users, %d sets, %d states",
				len(op.Users), len(op.Sets), len(op.States))
		}
		for _, u := range op.Users {
			if u < 0 {
				return op, fmt.Errorf("wal: adopt op with negative user %d", u)
			}
		}
		for _, set := range op.Sets {
			for _, v := range set {
				if v < 0 {
					return op, fmt.Errorf("wal: adopt op with negative event %d", v)
				}
			}
		}
	case OpSetBids:
		if op.User < 0 {
			return op, fmt.Errorf("wal: set_bids op with negative user %d", op.User)
		}
		for _, v := range op.Bids {
			if v < 0 {
				return op, fmt.Errorf("wal: set_bids op with negative event %d", v)
			}
		}
	default:
		return op, fmt.Errorf("wal: unknown op kind %q", op.Kind)
	}
	return op, nil
}
