package lp

import "fmt"

// OptionError reports a Revised tuning knob set to a value outside its
// domain. Every integer knob keeps the "zero means default" convention;
// negative values (and unknown rule names) used to be silently coerced to
// the default, which hid typos like RefactorEvery: -1 in config plumbing —
// now they fail fast at the public entry points (Revised.Solve,
// Solver.Solve, Solver.Resolve) before any state is touched.
type OptionError struct {
	Option string // field name on Revised, e.g. "RefactorEvery"
	Value  any    // the rejected value
	Reason string // what the domain is
}

func (e *OptionError) Error() string {
	return fmt.Sprintf("lp: invalid Revised.%s = %v: %s", e.Option, e.Value, e.Reason)
}

// validate checks the tuning knobs up front. Tested knob by knob in the
// regression table of TestRevisedOptionValidation.
func (s *Revised) validate() error {
	if s.MaxIter < 0 {
		return &OptionError{"MaxIter", s.MaxIter, "must be ≥ 0 (0 selects the default bound)"}
	}
	if s.RefactorEvery < 0 {
		return &OptionError{"RefactorEvery", s.RefactorEvery, "must be ≥ 0 (0 selects the default cadence)"}
	}
	if s.PricingWindow < 0 {
		return &OptionError{"PricingWindow", s.PricingWindow, "must be ≥ 0 (0 selects the default window)"}
	}
	if s.PricingCandidates < 0 {
		return &OptionError{"PricingCandidates", s.PricingCandidates, "must be ≥ 0 (0 selects the auto window)"}
	}
	if s.RepairBudget < 0 {
		return &OptionError{"RepairBudget", s.RepairBudget, "must be ≥ 0 (0 selects the delta-proportional budget)"}
	}
	if s.HypersparseThreshold < 0 || s.HypersparseThreshold > 1 || s.HypersparseThreshold != s.HypersparseThreshold {
		return &OptionError{"HypersparseThreshold", s.HypersparseThreshold, "must be in [0, 1] (0 selects the default density)"}
	}
	if s.ParallelThreshold < 0 {
		return &OptionError{"ParallelThreshold", s.ParallelThreshold, "must be ≥ 0 (0 selects the package default)"}
	}
	if s.Workers < 0 {
		return &OptionError{"Workers", s.Workers, "must be ≥ 0 (0 means GOMAXPROCS)"}
	}
	switch s.Pricing {
	case "", "auto", "devex", "dantzig":
	default:
		return &OptionError{"Pricing", s.Pricing, `must be "", "auto", "devex" or "dantzig"`}
	}
	switch s.DualPricing {
	case "", "auto", "dse", "maxinfeas":
	default:
		return &OptionError{"DualPricing", s.DualPricing, `must be "", "auto", "dse" or "maxinfeas"`}
	}
	return nil
}

// dualDSE resolves the DualPricing knob; validate has already rejected
// anything else.
func (s *Revised) dualDSE() bool {
	return s.DualPricing != "maxinfeas"
}
